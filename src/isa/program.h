// Program builder ("assembler") and linker.
//
// Guest programs — workloads, the runtime, the attack demos — are written
// against this API. A Program is a set of named Functions (lists of Items)
// plus named data blobs; link() lays them out, resolves labels/symbols and
// produces a loadable Image. Items keep symbolic structure (labels, calls,
// ret markers) so instrumentation passes can rewrite prologues/epilogues
// before linking, exactly like the paper's LLVM passes rewrite IR.
#pragma once

#include <deque>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "isa/inst.h"

namespace sealpk::isa {

using Label = u32;

struct Item {
  enum class Kind : u8 {
    kInst,    // concrete instruction, no symbolic operand
    kBind,    // binds `label` at this point (emits nothing)
    kBranch,  // conditional branch (inst.op/rs1/rs2) to `label`
    kJump,    // jal inst.rd, `label`
    kCall,    // jal ra, function `sym`
    kLa,      // load address of `sym` into inst.rd (auipc+addi, 8 bytes)
    kRet,     // function return (jalr zero, ra, 0); marker for passes
  };
  Kind kind = Kind::kInst;
  Inst inst;
  Label label = 0;
  std::string sym;
};

class Function {
 public:
  explicit Function(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  std::vector<Item>& items() { return items_; }
  const std::vector<Item>& items() const { return items_; }

  // Functions opt out of shadow-stack instrumentation (runtime helpers and
  // the instrumentation's own push/pop helpers must not instrument
  // themselves).
  bool instrumentable = true;

  // --- labels -----------------------------------------------------------
  Label new_label() { return next_label_++; }
  Function& bind(Label l);

  // --- generic emitters -------------------------------------------------
  Function& emit(const Inst& inst);
  Function& r(Op op, u8 rd, u8 rs1, u8 rs2);
  Function& i(Op op, u8 rd, u8 rs1, i64 imm);
  Function& store(Op op, u8 rs2, i64 off, u8 base);
  Function& branch(Op op, u8 rs1, u8 rs2, Label l);

  // --- common RV64 mnemonics (thin sugar over the generic emitters) ------
  Function& add(u8 rd, u8 rs1, u8 rs2) { return r(Op::kAdd, rd, rs1, rs2); }
  Function& sub(u8 rd, u8 rs1, u8 rs2) { return r(Op::kSub, rd, rs1, rs2); }
  Function& addw(u8 rd, u8 rs1, u8 rs2) { return r(Op::kAddw, rd, rs1, rs2); }
  Function& subw(u8 rd, u8 rs1, u8 rs2) { return r(Op::kSubw, rd, rs1, rs2); }
  Function& mul(u8 rd, u8 rs1, u8 rs2) { return r(Op::kMul, rd, rs1, rs2); }
  Function& mulhu(u8 rd, u8 rs1, u8 rs2) { return r(Op::kMulhu, rd, rs1, rs2); }
  Function& div(u8 rd, u8 rs1, u8 rs2) { return r(Op::kDiv, rd, rs1, rs2); }
  Function& divu(u8 rd, u8 rs1, u8 rs2) { return r(Op::kDivu, rd, rs1, rs2); }
  Function& rem(u8 rd, u8 rs1, u8 rs2) { return r(Op::kRem, rd, rs1, rs2); }
  Function& remu(u8 rd, u8 rs1, u8 rs2) { return r(Op::kRemu, rd, rs1, rs2); }
  Function& and_(u8 rd, u8 rs1, u8 rs2) { return r(Op::kAnd, rd, rs1, rs2); }
  Function& or_(u8 rd, u8 rs1, u8 rs2) { return r(Op::kOr, rd, rs1, rs2); }
  Function& xor_(u8 rd, u8 rs1, u8 rs2) { return r(Op::kXor, rd, rs1, rs2); }
  Function& sll(u8 rd, u8 rs1, u8 rs2) { return r(Op::kSll, rd, rs1, rs2); }
  Function& srl(u8 rd, u8 rs1, u8 rs2) { return r(Op::kSrl, rd, rs1, rs2); }
  Function& sra(u8 rd, u8 rs1, u8 rs2) { return r(Op::kSra, rd, rs1, rs2); }
  Function& sltu(u8 rd, u8 rs1, u8 rs2) { return r(Op::kSltu, rd, rs1, rs2); }
  Function& slt(u8 rd, u8 rs1, u8 rs2) { return r(Op::kSlt, rd, rs1, rs2); }

  Function& addi(u8 rd, u8 rs1, i64 imm) { return i(Op::kAddi, rd, rs1, imm); }
  Function& addiw(u8 rd, u8 rs1, i64 v) { return i(Op::kAddiw, rd, rs1, v); }
  Function& andi(u8 rd, u8 rs1, i64 imm) { return i(Op::kAndi, rd, rs1, imm); }
  Function& ori(u8 rd, u8 rs1, i64 imm) { return i(Op::kOri, rd, rs1, imm); }
  Function& xori(u8 rd, u8 rs1, i64 imm) { return i(Op::kXori, rd, rs1, imm); }
  Function& slti(u8 rd, u8 rs1, i64 imm) { return i(Op::kSlti, rd, rs1, imm); }
  Function& sltiu(u8 rd, u8 rs1, i64 v) { return i(Op::kSltiu, rd, rs1, v); }
  Function& slli(u8 rd, u8 rs1, i64 sh) { return i(Op::kSlli, rd, rs1, sh); }
  Function& srli(u8 rd, u8 rs1, i64 sh) { return i(Op::kSrli, rd, rs1, sh); }
  Function& srai(u8 rd, u8 rs1, i64 sh) { return i(Op::kSrai, rd, rs1, sh); }
  Function& slliw(u8 rd, u8 rs1, i64 sh) { return i(Op::kSlliw, rd, rs1, sh); }
  Function& srliw(u8 rd, u8 rs1, i64 sh) { return i(Op::kSrliw, rd, rs1, sh); }
  Function& sraiw(u8 rd, u8 rs1, i64 sh) { return i(Op::kSraiw, rd, rs1, sh); }

  Function& lb(u8 rd, i64 off, u8 base) { return i(Op::kLb, rd, base, off); }
  Function& lbu(u8 rd, i64 off, u8 base) { return i(Op::kLbu, rd, base, off); }
  Function& lh(u8 rd, i64 off, u8 base) { return i(Op::kLh, rd, base, off); }
  Function& lhu(u8 rd, i64 off, u8 base) { return i(Op::kLhu, rd, base, off); }
  Function& lw(u8 rd, i64 off, u8 base) { return i(Op::kLw, rd, base, off); }
  Function& lwu(u8 rd, i64 off, u8 base) { return i(Op::kLwu, rd, base, off); }
  Function& ld(u8 rd, i64 off, u8 base) { return i(Op::kLd, rd, base, off); }
  Function& sb(u8 rs, i64 off, u8 base) { return store(Op::kSb, rs, off, base); }
  Function& sh(u8 rs, i64 off, u8 base) { return store(Op::kSh, rs, off, base); }
  Function& sw(u8 rs, i64 off, u8 base) { return store(Op::kSw, rs, off, base); }
  Function& sd(u8 rs, i64 off, u8 base) { return store(Op::kSd, rs, off, base); }

  Function& beq(u8 a, u8 b, Label l) { return branch(Op::kBeq, a, b, l); }
  Function& bne(u8 a, u8 b, Label l) { return branch(Op::kBne, a, b, l); }
  Function& blt(u8 a, u8 b, Label l) { return branch(Op::kBlt, a, b, l); }
  Function& bge(u8 a, u8 b, Label l) { return branch(Op::kBge, a, b, l); }
  Function& bltu(u8 a, u8 b, Label l) { return branch(Op::kBltu, a, b, l); }
  Function& bgeu(u8 a, u8 b, Label l) { return branch(Op::kBgeu, a, b, l); }
  Function& beqz(u8 a, Label l) { return beq(a, 0, l); }
  Function& bnez(u8 a, Label l) { return bne(a, 0, l); }
  Function& blez(u8 a, Label l) { return branch(Op::kBge, 0, a, l); }
  Function& bgtz(u8 a, Label l) { return branch(Op::kBlt, 0, a, l); }

  // --- pseudo-instructions -----------------------------------------------
  Function& nop() { return addi(0, 0, 0); }
  Function& mv(u8 rd, u8 rs) { return addi(rd, rs, 0); }
  Function& neg(u8 rd, u8 rs) { return sub(rd, 0, rs); }
  Function& not_(u8 rd, u8 rs) { return xori(rd, rs, -1); }
  Function& seqz(u8 rd, u8 rs) { return sltiu(rd, rs, 1); }
  Function& snez(u8 rd, u8 rs) { return sltu(rd, 0, rs); }
  Function& li(u8 rd, i64 imm);            // expands to 1..6 instructions
  Function& la(u8 rd, std::string sym);    // auipc+addi pair at link time
  Function& j(Label l);                    // jal zero, l
  Function& jal_to(Label l, u8 rd = ra);   // intra-function jal
  Function& call(std::string fn);          // jal ra, fn
  Function& jr(u8 rs) { return i(Op::kJalr, 0, rs, 0); }
  Function& jalr_reg(u8 rd, u8 rs, i64 off = 0) {
    return i(Op::kJalr, rd, rs, off);
  }
  Function& ret();
  Function& ecall() { return emit(Inst{.op = Op::kEcall}); }
  Function& ebreak() { return emit(Inst{.op = Op::kEbreak}); }

  // --- SealPK / MPK custom instructions -----------------------------------
  Function& rdpkr(u8 rd, u8 rs1) { return r(Op::kRdpkr, rd, rs1, 0); }
  Function& wrpkr(u8 rs1, u8 rs2) { return r(Op::kWrpkr, 0, rs1, rs2); }
  Function& seal_start(u8 rs1) { return r(Op::kSealStart, 0, rs1, 0); }
  Function& seal_end(u8 rs1) { return r(Op::kSealEnd, 0, rs1, 0); }
  Function& wrpkru(u8 rs1) { return r(Op::kWrpkru, 0, rs1, 0); }
  Function& rdpkru(u8 rd) { return r(Op::kRdpkru, rd, 0, 0); }

 private:
  std::string name_;
  std::vector<Item> items_;
  Label next_label_ = 0;
};

struct DataBlob {
  std::string name;
  std::vector<u8> bytes;  // initialised contents (may be empty)
  u64 zero_size = 0;      // additional zero-filled tail
  u64 align = 8;
  bool writable = true;

  u64 size() const { return bytes.size() + zero_size; }
};

struct Segment {
  u64 addr = 0;
  std::vector<u8> bytes;
  bool read = true;
  bool write = false;
  bool exec = false;
};

// A linked, loadable program image.
struct Image {
  u64 entry = 0;
  std::vector<Segment> segments;
  std::map<std::string, u64> symbols;  // functions and data blobs
  // Function address ranges [first, second) — used e.g. to derive the
  // permissible WRPKR range for permission sealing.
  std::map<std::string, std::pair<u64, u64>> func_ranges;
  u64 text_base = 0, text_end = 0;
  u64 data_base = 0, data_end = 0;
};

struct LinkOptions {
  u64 text_base = 0x10000;
  std::string entry_symbol = "_start";
};

class Program {
 public:
  Function& add_function(std::string name);
  Function* find_function(std::string_view name);
  const Function* find_function(std::string_view name) const;

  DataBlob& add_data(std::string name, std::vector<u8> bytes, u64 align = 8);
  DataBlob& add_zero(std::string name, u64 size, u64 align = 8);
  DataBlob& add_rodata(std::string name, std::vector<u8> bytes,
                       u64 align = 8);
  DataBlob* find_data(std::string_view name);

  std::deque<Function>& functions() { return functions_; }
  const std::deque<Function>& functions() const { return functions_; }
  std::deque<DataBlob>& data() { return data_; }

  // Resolves all labels and symbols; throws CheckError on dangling
  // references, duplicate symbols or out-of-range offsets.
  Image link(const LinkOptions& opts = {}) const;

 private:
  std::deque<Function> functions_;
  std::deque<DataBlob> data_;
};

}  // namespace sealpk::isa
