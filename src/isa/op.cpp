#include "isa/op.h"

#include "common/check.h"

namespace sealpk::isa {

namespace {
constexpr OpInfo kOpTable[] = {
#define SEALPK_OP_INFO(op, name, fmt, opc, f3, f7) \
  {name, Format::fmt, opc, f3, f7},
    SEALPK_OP_LIST(SEALPK_OP_INFO)
#undef SEALPK_OP_INFO
        {"illegal", Format::kSys, 0, 0, 0},
};
static_assert(sizeof(kOpTable) / sizeof(kOpTable[0]) == kNumOps);
}  // namespace

const OpInfo& op_info(Op op) {
  const auto idx = static_cast<unsigned>(op);
  SEALPK_CHECK(idx < kNumOps);
  return kOpTable[idx];
}

Op custom0_op(u32 funct3, u32 funct7) {
  for (unsigned idx = 0; idx + 1 < kNumOps; ++idx) {
    const OpInfo& oi = kOpTable[idx];
    if (oi.opcode == kCustom0Opcode && oi.funct3 == funct3 &&
        oi.funct7 == funct7) {
      return static_cast<Op>(idx);
    }
  }
  return Op::kIllegal;
}

}  // namespace sealpk::isa
