#include <sstream>

#include "isa/inst.h"

namespace sealpk::isa {

namespace {
constexpr const char* kRegNames[32] = {
    "zero", "ra", "sp", "gp", "tp",  "t0",  "t1", "t2", "s0", "s1", "a0",
    "a1",   "a2", "a3", "a4", "a5",  "a6",  "a7", "s2", "s3", "s4", "s5",
    "s6",   "s7", "s8", "s9", "s10", "s11", "t3", "t4", "t5", "t6"};
}

const char* reg_name(u8 reg) { return reg < 32 ? kRegNames[reg] : "?"; }

std::string disassemble(const Inst& inst) {
  if (inst.op == Op::kIllegal) return "illegal";
  const OpInfo& oi = op_info(inst.op);
  std::ostringstream os;
  os << oi.name;
  const char* rd = reg_name(inst.rd);
  const char* rs1 = reg_name(inst.rs1);
  const char* rs2 = reg_name(inst.rs2);
  switch (oi.format) {
    case Format::kR:
      if (inst.op == Op::kSfenceVma) break;
      os << ' ' << rd << ", " << rs1 << ", " << rs2;
      break;
    case Format::kI:
      if (inst.op == Op::kLb || inst.op == Op::kLh || inst.op == Op::kLw ||
          inst.op == Op::kLd || inst.op == Op::kLbu || inst.op == Op::kLhu ||
          inst.op == Op::kLwu || inst.op == Op::kJalr) {
        os << ' ' << rd << ", " << inst.imm << '(' << rs1 << ')';
      } else {
        os << ' ' << rd << ", " << rs1 << ", " << inst.imm;
      }
      break;
    case Format::kS:
      os << ' ' << rs2 << ", " << inst.imm << '(' << rs1 << ')';
      break;
    case Format::kB:
      os << ' ' << rs1 << ", " << rs2 << ", " << inst.imm;
      break;
    case Format::kU:
      os << ' ' << rd << ", 0x" << std::hex << (bits(inst.imm, 31, 12));
      break;
    case Format::kJ:
      os << ' ' << rd << ", " << inst.imm;
      break;
    case Format::kShift64:
    case Format::kShift32:
      os << ' ' << rd << ", " << rs1 << ", " << inst.imm;
      break;
    case Format::kCsr:
      os << ' ' << rd << ", 0x" << std::hex << inst.csr << std::dec << ", "
         << rs1;
      break;
    case Format::kCsrI:
      os << ' ' << rd << ", 0x" << std::hex << inst.csr << std::dec << ", "
         << inst.imm;
      break;
    case Format::kSys:
      break;
  }
  return os.str();
}

}  // namespace sealpk::isa
