#include "isa/program.h"

#include <bit>
#include <unordered_map>

#include "common/check.h"

namespace sealpk::isa {

namespace {
constexpr u64 kPageSize = 4096;

u64 item_size(const Item& item) {
  switch (item.kind) {
    case Item::Kind::kBind:
      return 0;
    case Item::Kind::kLa:
      return 8;
    default:
      return 4;
  }
}
}  // namespace

Function& Function::bind(Label l) {
  SEALPK_CHECK_MSG(l < next_label_, "unknown label in " << name_);
  Item item;
  item.kind = Item::Kind::kBind;
  item.label = l;
  items_.push_back(std::move(item));
  return *this;
}

Function& Function::emit(const Inst& inst) {
  Item item;
  item.kind = Item::Kind::kInst;
  item.inst = inst;
  items_.push_back(std::move(item));
  return *this;
}

Function& Function::r(Op op, u8 rd, u8 rs1, u8 rs2) {
  return emit(Inst{.op = op, .rd = rd, .rs1 = rs1, .rs2 = rs2});
}

Function& Function::i(Op op, u8 rd, u8 rs1, i64 imm) {
  return emit(Inst{.op = op, .rd = rd, .rs1 = rs1, .imm = imm});
}

Function& Function::store(Op op, u8 rs2, i64 off, u8 base) {
  return emit(Inst{.op = op, .rs1 = base, .rs2 = rs2, .imm = off});
}

Function& Function::branch(Op op, u8 rs1, u8 rs2, Label l) {
  Item item;
  item.kind = Item::Kind::kBranch;
  item.inst = Inst{.op = op, .rs1 = rs1, .rs2 = rs2};
  item.label = l;
  items_.push_back(std::move(item));
  return *this;
}

Function& Function::li(u8 rd, i64 imm) {
  if (fits_signed(imm, 12)) return addi(rd, 0, imm);
  if (fits_signed(imm, 32)) {
    const i64 hi = sext((static_cast<u64>(imm) + 0x800) & 0xFFFFF000u, 32);
    const i64 lo = sext(static_cast<u64>(imm), 12);
    i(Op::kLui, rd, 0, hi);
    if (lo != 0) addiw(rd, rd, lo);
    return *this;
  }
  // 64-bit constant: materialise the upper chunk recursively, then shift in
  // the low 12 bits (LLVM's RISCVMatInt strategy).
  const i64 lo12 = sext(static_cast<u64>(imm), 12);
  // The subtraction must wrap: for imm near INT64_MAX the difference only
  // exists mod 2^64, which is fine because the materialisation sequence
  // below (li + slli + addi) is itself mod-2^64 arithmetic.
  i64 hi52 =
      static_cast<i64>(static_cast<u64>(imm) - static_cast<u64>(lo12)) >> 12;
  const unsigned tz = std::countr_zero(static_cast<u64>(hi52));
  const unsigned shift = 12 + tz;
  hi52 >>= tz;
  li(rd, hi52);
  slli(rd, rd, shift);
  if (lo12 != 0) addi(rd, rd, lo12);
  return *this;
}

Function& Function::la(u8 rd, std::string sym) {
  Item item;
  item.kind = Item::Kind::kLa;
  item.inst = Inst{.rd = rd};
  item.sym = std::move(sym);
  items_.push_back(std::move(item));
  return *this;
}

Function& Function::j(Label l) { return jal_to(l, 0); }

Function& Function::jal_to(Label l, u8 rd) {
  Item item;
  item.kind = Item::Kind::kJump;
  item.inst = Inst{.op = Op::kJal, .rd = rd};
  item.label = l;
  items_.push_back(std::move(item));
  return *this;
}

Function& Function::call(std::string fn) {
  Item item;
  item.kind = Item::Kind::kCall;
  item.sym = std::move(fn);
  items_.push_back(std::move(item));
  return *this;
}

Function& Function::ret() {
  Item item;
  item.kind = Item::Kind::kRet;
  items_.push_back(std::move(item));
  return *this;
}

Function& Program::add_function(std::string name) {
  SEALPK_CHECK_MSG(find_function(name) == nullptr,
                   "duplicate function " << name);
  functions_.emplace_back(std::move(name));
  return functions_.back();
}

Function* Program::find_function(std::string_view name) {
  for (auto& f : functions_)
    if (f.name() == name) return &f;
  return nullptr;
}

const Function* Program::find_function(std::string_view name) const {
  for (const auto& f : functions_)
    if (f.name() == name) return &f;
  return nullptr;
}

DataBlob& Program::add_data(std::string name, std::vector<u8> bytes,
                            u64 align) {
  SEALPK_CHECK_MSG(find_data(name) == nullptr, "duplicate data " << name);
  SEALPK_CHECK(is_pow2(align));
  data_.push_back(DataBlob{.name = std::move(name),
                           .bytes = std::move(bytes),
                           .align = align});
  return data_.back();
}

DataBlob& Program::add_zero(std::string name, u64 size, u64 align) {
  auto& blob = add_data(std::move(name), {}, align);
  blob.zero_size = size;
  return blob;
}

DataBlob& Program::add_rodata(std::string name, std::vector<u8> bytes,
                              u64 align) {
  auto& blob = add_data(std::move(name), std::move(bytes), align);
  blob.writable = false;
  return blob;
}

DataBlob* Program::find_data(std::string_view name) {
  for (auto& d : data_)
    if (d.name == name) return &d;
  return nullptr;
}

Image Program::link(const LinkOptions& opts) const {
  SEALPK_CHECK_MSG(!functions_.empty(), "empty program");
  Image image;
  image.text_base = opts.text_base;

  // Pass 1: lay out functions and intra-function labels.
  std::unordered_map<std::string, u64> symbols;
  std::vector<std::unordered_map<Label, u64>> label_addrs(functions_.size());
  u64 cursor = opts.text_base;
  size_t fidx = 0;
  for (const auto& f : functions_) {
    SEALPK_CHECK_MSG(!symbols.contains(f.name()), "duplicate " << f.name());
    symbols[f.name()] = cursor;
    const u64 start = cursor;
    for (const auto& item : f.items()) {
      if (item.kind == Item::Kind::kBind) {
        SEALPK_CHECK_MSG(!label_addrs[fidx].contains(item.label),
                         "label bound twice in " << f.name());
        label_addrs[fidx][item.label] = cursor;
      }
      cursor += item_size(item);
    }
    image.func_ranges[f.name()] = {start, cursor};
    ++fidx;
  }
  image.text_end = cursor;

  // Data layout: read-only blobs on the page after text, writable blobs on
  // the page after those (so the loader can give them distinct PTE
  // permissions).
  u64 ro_cursor = align_up(cursor, kPageSize);
  const u64 ro_base = ro_cursor;
  for (const auto& d : data_) {
    if (d.writable) continue;
    ro_cursor = align_up(ro_cursor, d.align);
    SEALPK_CHECK_MSG(!symbols.contains(d.name), "duplicate " << d.name);
    symbols[d.name] = ro_cursor;
    ro_cursor += d.size();
  }
  u64 rw_cursor = align_up(ro_cursor, kPageSize);
  const u64 rw_base = rw_cursor;
  image.data_base = ro_base;
  for (const auto& d : data_) {
    if (!d.writable) continue;
    rw_cursor = align_up(rw_cursor, d.align);
    SEALPK_CHECK_MSG(!symbols.contains(d.name), "duplicate " << d.name);
    symbols[d.name] = rw_cursor;
    rw_cursor += d.size();
  }
  image.data_end = rw_cursor;

  // Pass 2: emit text.
  Segment text;
  text.addr = opts.text_base;
  text.exec = true;
  text.bytes.reserve(image.text_end - opts.text_base);
  auto emit32 = [&text](u32 word) {
    text.bytes.push_back(static_cast<u8>(word));
    text.bytes.push_back(static_cast<u8>(word >> 8));
    text.bytes.push_back(static_cast<u8>(word >> 16));
    text.bytes.push_back(static_cast<u8>(word >> 24));
  };
  auto resolve = [&symbols](const std::string& sym,
                            const std::string& fn) -> u64 {
    auto it = symbols.find(sym);
    SEALPK_CHECK_MSG(it != symbols.end(),
                     "undefined symbol '" << sym << "' referenced in " << fn);
    return it->second;
  };

  cursor = opts.text_base;
  fidx = 0;
  for (const auto& f : functions_) {
    for (const auto& item : f.items()) {
      switch (item.kind) {
        case Item::Kind::kBind:
          break;
        case Item::Kind::kInst:
          emit32(encode(item.inst));
          break;
        case Item::Kind::kBranch:
        case Item::Kind::kJump: {
          auto it = label_addrs[fidx].find(item.label);
          SEALPK_CHECK_MSG(it != label_addrs[fidx].end(),
                           "unbound label in " << f.name());
          Inst inst = item.inst;
          inst.imm = static_cast<i64>(it->second) - static_cast<i64>(cursor);
          emit32(encode(inst));
          break;
        }
        case Item::Kind::kCall: {
          const u64 target = resolve(item.sym, f.name());
          SEALPK_CHECK_MSG(image.func_ranges.contains(item.sym),
                           "call target '" << item.sym
                                           << "' is not a function");
          Inst inst{.op = Op::kJal, .rd = ra};
          inst.imm = static_cast<i64>(target) - static_cast<i64>(cursor);
          emit32(encode(inst));
          break;
        }
        case Item::Kind::kLa: {
          const u64 target = resolve(item.sym, f.name());
          const i64 delta =
              static_cast<i64>(target) - static_cast<i64>(cursor);
          const i64 hi = ((delta + 0x800) >> 12) << 12;
          const i64 lo = delta - hi;
          SEALPK_CHECK(fits_signed(hi, 32) && fits_signed(lo, 12));
          emit32(encode(Inst{.op = Op::kAuipc, .rd = item.inst.rd, .imm = hi}));
          emit32(encode(Inst{.op = Op::kAddi,
                             .rd = item.inst.rd,
                             .rs1 = item.inst.rd,
                             .imm = lo}));
          break;
        }
        case Item::Kind::kRet:
          emit32(encode(Inst{.op = Op::kJalr, .rd = 0, .rs1 = ra, .imm = 0}));
          break;
      }
      cursor += item_size(item);
    }
    ++fidx;
  }
  image.segments.push_back(std::move(text));

  // Emit data segments.
  auto emit_data = [&](bool writable, u64 base, u64 end) {
    if (end <= base) return;
    Segment seg;
    seg.addr = base;
    seg.write = writable;
    seg.bytes.assign(end - base, 0);
    for (const auto& d : data_) {
      if (d.writable != writable) continue;
      const u64 off = symbols.at(d.name) - base;
      std::copy(d.bytes.begin(), d.bytes.end(), seg.bytes.begin() + off);
    }
    image.segments.push_back(std::move(seg));
  };
  emit_data(/*writable=*/false, ro_base, ro_cursor);
  emit_data(/*writable=*/true, rw_base, rw_cursor);

  // Entry point.
  auto entry_it = symbols.find(opts.entry_symbol);
  image.entry =
      entry_it != symbols.end() ? entry_it->second : opts.text_base;
  image.symbols.insert(symbols.begin(), symbols.end());
  return image;
}

}  // namespace sealpk::isa
