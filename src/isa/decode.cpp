#include "isa/inst.h"

namespace sealpk::isa {

namespace {

i64 imm_i(u32 raw) { return sext(bits(raw, 31, 20), 12); }

i64 imm_s(u32 raw) {
  return sext((bits(raw, 31, 25) << 5) | bits(raw, 11, 7), 12);
}

i64 imm_b(u32 raw) {
  return sext((bit(raw, 31) << 12) | (bit(raw, 7) << 11) |
                  (bits(raw, 30, 25) << 5) | (bits(raw, 11, 8) << 1),
              13);
}

i64 imm_u(u32 raw) { return sext(raw & 0xFFFFF000u, 32); }

i64 imm_j(u32 raw) {
  return sext((bit(raw, 31) << 20) | (bits(raw, 19, 12) << 12) |
                  (bit(raw, 20) << 11) | (bits(raw, 30, 21) << 1),
              21);
}

Op decode_load(u32 f3) {
  switch (f3) {
    case 0: return Op::kLb;
    case 1: return Op::kLh;
    case 2: return Op::kLw;
    case 3: return Op::kLd;
    case 4: return Op::kLbu;
    case 5: return Op::kLhu;
    case 6: return Op::kLwu;
    default: return Op::kIllegal;
  }
}

Op decode_store(u32 f3) {
  switch (f3) {
    case 0: return Op::kSb;
    case 1: return Op::kSh;
    case 2: return Op::kSw;
    case 3: return Op::kSd;
    default: return Op::kIllegal;
  }
}

Op decode_branch(u32 f3) {
  switch (f3) {
    case 0: return Op::kBeq;
    case 1: return Op::kBne;
    case 4: return Op::kBlt;
    case 5: return Op::kBge;
    case 6: return Op::kBltu;
    case 7: return Op::kBgeu;
    default: return Op::kIllegal;
  }
}

Op decode_op_imm(u32 raw, u32 f3) {
  switch (f3) {
    case 0: return Op::kAddi;
    case 1: return bits(raw, 31, 26) == 0 ? Op::kSlli : Op::kIllegal;
    case 2: return Op::kSlti;
    case 3: return Op::kSltiu;
    case 4: return Op::kXori;
    case 5:
      if (bits(raw, 31, 26) == 0x00) return Op::kSrli;
      if (bits(raw, 31, 26) == 0x10) return Op::kSrai;
      return Op::kIllegal;
    case 6: return Op::kOri;
    case 7: return Op::kAndi;
    default: return Op::kIllegal;
  }
}

Op decode_op_imm32(u32 raw, u32 f3) {
  switch (f3) {
    case 0: return Op::kAddiw;
    case 1: return bits(raw, 31, 25) == 0 ? Op::kSlliw : Op::kIllegal;
    case 5:
      if (bits(raw, 31, 25) == 0x00) return Op::kSrliw;
      if (bits(raw, 31, 25) == 0x20) return Op::kSraiw;
      return Op::kIllegal;
    default: return Op::kIllegal;
  }
}

Op decode_op(u32 f3, u32 f7) {
  if (f7 == 0x01) {  // M extension
    switch (f3) {
      case 0: return Op::kMul;
      case 1: return Op::kMulh;
      case 2: return Op::kMulhsu;
      case 3: return Op::kMulhu;
      case 4: return Op::kDiv;
      case 5: return Op::kDivu;
      case 6: return Op::kRem;
      case 7: return Op::kRemu;
    }
  }
  switch (f3) {
    case 0: return f7 == 0 ? Op::kAdd : f7 == 0x20 ? Op::kSub : Op::kIllegal;
    case 1: return f7 == 0 ? Op::kSll : Op::kIllegal;
    case 2: return f7 == 0 ? Op::kSlt : Op::kIllegal;
    case 3: return f7 == 0 ? Op::kSltu : Op::kIllegal;
    case 4: return f7 == 0 ? Op::kXor : Op::kIllegal;
    case 5: return f7 == 0 ? Op::kSrl : f7 == 0x20 ? Op::kSra : Op::kIllegal;
    case 6: return f7 == 0 ? Op::kOr : Op::kIllegal;
    case 7: return f7 == 0 ? Op::kAnd : Op::kIllegal;
    default: return Op::kIllegal;
  }
}

Op decode_op32(u32 f3, u32 f7) {
  if (f7 == 0x01) {
    switch (f3) {
      case 0: return Op::kMulw;
      case 4: return Op::kDivw;
      case 5: return Op::kDivuw;
      case 6: return Op::kRemw;
      case 7: return Op::kRemuw;
      default: return Op::kIllegal;
    }
  }
  switch (f3) {
    case 0: return f7 == 0 ? Op::kAddw : f7 == 0x20 ? Op::kSubw : Op::kIllegal;
    case 1: return f7 == 0 ? Op::kSllw : Op::kIllegal;
    case 5: return f7 == 0 ? Op::kSrlw : f7 == 0x20 ? Op::kSraw : Op::kIllegal;
    default: return Op::kIllegal;
  }
}

// Custom-0 decode is table-driven (custom0_op in op.cpp): every
// (funct3, funct7) combination that does not name an op in SEALPK_OP_LIST
// yields kIllegal, so the decoder cannot desync from the op table.

}  // namespace

Inst decode(u32 raw) {
  Inst inst;
  inst.raw = raw;
  inst.rd = static_cast<u8>(bits(raw, 11, 7));
  inst.rs1 = static_cast<u8>(bits(raw, 19, 15));
  inst.rs2 = static_cast<u8>(bits(raw, 24, 20));
  const u32 opcode = bits(raw, 6, 0);
  const u32 f3 = bits(raw, 14, 12);
  const u32 f7 = bits(raw, 31, 25);

  switch (opcode) {
    case 0x37:
      inst.op = Op::kLui;
      inst.imm = imm_u(raw);
      break;
    case 0x17:
      inst.op = Op::kAuipc;
      inst.imm = imm_u(raw);
      break;
    case 0x6F:
      inst.op = Op::kJal;
      inst.imm = imm_j(raw);
      break;
    case 0x67:
      inst.op = f3 == 0 ? Op::kJalr : Op::kIllegal;
      inst.imm = imm_i(raw);
      break;
    case 0x63:
      inst.op = decode_branch(f3);
      inst.imm = imm_b(raw);
      break;
    case 0x03:
      inst.op = decode_load(f3);
      inst.imm = imm_i(raw);
      break;
    case 0x23:
      inst.op = decode_store(f3);
      inst.imm = imm_s(raw);
      break;
    case 0x13:
      inst.op = decode_op_imm(raw, f3);
      inst.imm = (inst.op == Op::kSlli || inst.op == Op::kSrli ||
                  inst.op == Op::kSrai)
                     ? static_cast<i64>(bits(raw, 25, 20))
                     : imm_i(raw);
      break;
    case 0x1B:
      inst.op = decode_op_imm32(raw, f3);
      inst.imm = inst.op == Op::kAddiw ? imm_i(raw)
                                       : static_cast<i64>(bits(raw, 24, 20));
      break;
    case 0x33:
      inst.op = decode_op(f3, f7);
      break;
    case 0x3B:
      inst.op = decode_op32(f3, f7);
      break;
    case 0x0F:
      inst.op = f3 == 0 ? Op::kFence : f3 == 1 ? Op::kFenceI : Op::kIllegal;
      inst.rd = inst.rs1 = inst.rs2 = 0;
      break;
    case 0x0B:
      inst.op = custom0_op(f3, f7);
      break;
    case 0x73:
      if (f3 == 0) {
        if (f7 == 0x09) {
          inst.op = Op::kSfenceVma;
        } else {
          const u32 funct12 = bits(raw, 31, 20);
          switch (funct12) {
            case 0x000: inst.op = Op::kEcall; break;
            case 0x001: inst.op = Op::kEbreak; break;
            case 0x102: inst.op = Op::kSret; break;
            case 0x105: inst.op = Op::kWfi; break;
            default: inst.op = Op::kIllegal; break;
          }
          inst.rd = inst.rs1 = inst.rs2 = 0;
        }
      } else {
        inst.csr = static_cast<u16>(bits(raw, 31, 20));
        switch (f3) {
          case 1: inst.op = Op::kCsrrw; break;
          case 2: inst.op = Op::kCsrrs; break;
          case 3: inst.op = Op::kCsrrc; break;
          case 5: inst.op = Op::kCsrrwi; break;
          case 6: inst.op = Op::kCsrrsi; break;
          case 7: inst.op = Op::kCsrrci; break;
          default: inst.op = Op::kIllegal; break;
        }
        if (f3 >= 5) {
          inst.imm = inst.rs1;  // uimm5 lives in the rs1 field
          inst.rs1 = 0;
        }
      }
      break;
    default:
      inst.op = Op::kIllegal;
      break;
  }
  if (inst.op == Op::kIllegal) {
    // Normalise so that all undecodable words compare equal in fields.
    inst.rd = inst.rs1 = inst.rs2 = 0;
    inst.imm = 0;
    inst.csr = 0;
    return inst;
  }
  // Clear register fields the format does not use, so decode(encode(i)) == i.
  switch (op_info(inst.op).format) {
    case Format::kI:
    case Format::kShift64:
    case Format::kShift32:
    case Format::kCsr:
    case Format::kCsrI:
      inst.rs2 = 0;
      break;
    case Format::kS:
    case Format::kB:
      inst.rd = 0;
      break;
    case Format::kU:
    case Format::kJ:
      inst.rs1 = inst.rs2 = 0;
      break;
    case Format::kR:
    case Format::kSys:
      break;
  }
  return inst;
}

}  // namespace sealpk::isa
