// Instruction mnemonics and encoding metadata for the simulated ISA:
// RV64IM + Zicsr + the SealPK / Intel-MPK custom-0 extensions.
#pragma once

#include "common/bits.h"

namespace sealpk::isa {

// X-macro: mnemonic, format, opcode[6:0], funct3, funct7.
// funct3/funct7 are 0 where the format ignores them.
// clang-format off
#define SEALPK_OP_LIST(X)                                  \
  /* RV64I upper-immediate / jumps */                      \
  X(kLui,      "lui",        kU,      0x37, 0, 0x00)       \
  X(kAuipc,    "auipc",      kU,      0x17, 0, 0x00)       \
  X(kJal,      "jal",        kJ,      0x6F, 0, 0x00)       \
  X(kJalr,     "jalr",       kI,      0x67, 0, 0x00)       \
  /* branches */                                           \
  X(kBeq,      "beq",        kB,      0x63, 0, 0x00)       \
  X(kBne,      "bne",        kB,      0x63, 1, 0x00)       \
  X(kBlt,      "blt",        kB,      0x63, 4, 0x00)       \
  X(kBge,      "bge",        kB,      0x63, 5, 0x00)       \
  X(kBltu,     "bltu",       kB,      0x63, 6, 0x00)       \
  X(kBgeu,     "bgeu",       kB,      0x63, 7, 0x00)       \
  /* loads */                                              \
  X(kLb,       "lb",         kI,      0x03, 0, 0x00)       \
  X(kLh,       "lh",         kI,      0x03, 1, 0x00)       \
  X(kLw,       "lw",         kI,      0x03, 2, 0x00)       \
  X(kLd,       "ld",         kI,      0x03, 3, 0x00)       \
  X(kLbu,      "lbu",        kI,      0x03, 4, 0x00)       \
  X(kLhu,      "lhu",        kI,      0x03, 5, 0x00)       \
  X(kLwu,      "lwu",        kI,      0x03, 6, 0x00)       \
  /* stores */                                             \
  X(kSb,       "sb",         kS,      0x23, 0, 0x00)       \
  X(kSh,       "sh",         kS,      0x23, 1, 0x00)       \
  X(kSw,       "sw",         kS,      0x23, 2, 0x00)       \
  X(kSd,       "sd",         kS,      0x23, 3, 0x00)       \
  /* op-imm */                                             \
  X(kAddi,     "addi",       kI,      0x13, 0, 0x00)       \
  X(kSlti,     "slti",       kI,      0x13, 2, 0x00)       \
  X(kSltiu,    "sltiu",      kI,      0x13, 3, 0x00)       \
  X(kXori,     "xori",       kI,      0x13, 4, 0x00)       \
  X(kOri,      "ori",        kI,      0x13, 6, 0x00)       \
  X(kAndi,     "andi",       kI,      0x13, 7, 0x00)       \
  X(kSlli,     "slli",       kShift64, 0x13, 1, 0x00)      \
  X(kSrli,     "srli",       kShift64, 0x13, 5, 0x00)      \
  X(kSrai,     "srai",       kShift64, 0x13, 5, 0x20)      \
  /* op-imm-32 */                                          \
  X(kAddiw,    "addiw",      kI,      0x1B, 0, 0x00)       \
  X(kSlliw,    "slliw",      kShift32, 0x1B, 1, 0x00)      \
  X(kSrliw,    "srliw",      kShift32, 0x1B, 5, 0x00)      \
  X(kSraiw,    "sraiw",      kShift32, 0x1B, 5, 0x20)      \
  /* op */                                                 \
  X(kAdd,      "add",        kR,      0x33, 0, 0x00)       \
  X(kSub,      "sub",        kR,      0x33, 0, 0x20)       \
  X(kSll,      "sll",        kR,      0x33, 1, 0x00)       \
  X(kSlt,      "slt",        kR,      0x33, 2, 0x00)       \
  X(kSltu,     "sltu",       kR,      0x33, 3, 0x00)       \
  X(kXor,      "xor",        kR,      0x33, 4, 0x00)       \
  X(kSrl,      "srl",        kR,      0x33, 5, 0x00)       \
  X(kSra,      "sra",        kR,      0x33, 5, 0x20)       \
  X(kOr,       "or",         kR,      0x33, 6, 0x00)       \
  X(kAnd,      "and",        kR,      0x33, 7, 0x00)       \
  /* op-32 */                                              \
  X(kAddw,     "addw",       kR,      0x3B, 0, 0x00)       \
  X(kSubw,     "subw",       kR,      0x3B, 0, 0x20)       \
  X(kSllw,     "sllw",       kR,      0x3B, 1, 0x00)       \
  X(kSrlw,     "srlw",       kR,      0x3B, 5, 0x00)       \
  X(kSraw,     "sraw",       kR,      0x3B, 5, 0x20)       \
  /* M extension */                                        \
  X(kMul,      "mul",        kR,      0x33, 0, 0x01)       \
  X(kMulh,     "mulh",       kR,      0x33, 1, 0x01)       \
  X(kMulhsu,   "mulhsu",     kR,      0x33, 2, 0x01)       \
  X(kMulhu,    "mulhu",      kR,      0x33, 3, 0x01)       \
  X(kDiv,      "div",        kR,      0x33, 4, 0x01)       \
  X(kDivu,     "divu",       kR,      0x33, 5, 0x01)       \
  X(kRem,      "rem",        kR,      0x33, 6, 0x01)       \
  X(kRemu,     "remu",       kR,      0x33, 7, 0x01)       \
  X(kMulw,     "mulw",       kR,      0x3B, 0, 0x01)       \
  X(kDivw,     "divw",       kR,      0x3B, 4, 0x01)       \
  X(kDivuw,    "divuw",      kR,      0x3B, 5, 0x01)       \
  X(kRemw,     "remw",       kR,      0x3B, 6, 0x01)       \
  X(kRemuw,    "remuw",      kR,      0x3B, 7, 0x01)       \
  /* misc-mem / system */                                  \
  X(kFence,    "fence",      kSys,    0x0F, 0, 0x00)       \
  X(kFenceI,   "fence.i",    kSys,    0x0F, 1, 0x00)       \
  X(kEcall,    "ecall",      kSys,    0x73, 0, 0x00)       \
  X(kEbreak,   "ebreak",     kSys,    0x73, 0, 0x00)       \
  X(kSret,     "sret",       kSys,    0x73, 0, 0x08)       \
  X(kWfi,      "wfi",        kSys,    0x73, 0, 0x08)       \
  X(kSfenceVma,"sfence.vma", kR,      0x73, 0, 0x09)       \
  /* Zicsr */                                              \
  X(kCsrrw,    "csrrw",      kCsr,    0x73, 1, 0x00)       \
  X(kCsrrs,    "csrrs",      kCsr,    0x73, 2, 0x00)       \
  X(kCsrrc,    "csrrc",      kCsr,    0x73, 3, 0x00)       \
  X(kCsrrwi,   "csrrwi",     kCsrI,   0x73, 5, 0x00)       \
  X(kCsrrsi,   "csrrsi",     kCsrI,   0x73, 6, 0x00)       \
  X(kCsrrci,   "csrrci",     kCsrI,   0x73, 7, 0x00)       \
  /* SealPK custom-0 extension (RoCC-style) */             \
  X(kRdpkr,    "rdpkr",      kR,      0x0B, 0, 0x00)       \
  X(kWrpkr,    "wrpkr",      kR,      0x0B, 0, 0x01)       \
  X(kSealStart,"seal.start", kR,      0x0B, 0, 0x02)       \
  X(kSealEnd,  "seal.end",   kR,      0x0B, 0, 0x03)       \
  X(kSpkRange, "spk.range",  kR,      0x0B, 0, 0x04)       \
  X(kSpkSeal,  "spk.seal",   kR,      0x0B, 0, 0x05)       \
  /* Intel MPK compatibility flavour */                    \
  X(kWrpkru,   "wrpkru",     kR,      0x0B, 0, 0x10)       \
  X(kRdpkru,   "rdpkru",     kR,      0x0B, 0, 0x11)
// clang-format on

enum class Op : u16 {
#define SEALPK_OP_ENUM(op, name, fmt, opc, f3, f7) op,
  SEALPK_OP_LIST(SEALPK_OP_ENUM)
#undef SEALPK_OP_ENUM
      kIllegal,
};

enum class Format : u8 {
  kR,        // rd, rs1, rs2
  kI,        // rd, rs1, imm12
  kS,        // rs1, rs2, imm12
  kB,        // rs1, rs2, imm13 (branch offset)
  kU,        // rd, imm20 << 12
  kJ,        // rd, imm21 (jump offset)
  kShift64,  // rd, rs1, shamt6
  kShift32,  // rd, rs1, shamt5
  kCsr,      // rd, rs1, csr12
  kCsrI,     // rd, uimm5, csr12
  kSys,      // no register operands (fixed encoding)
};

struct OpInfo {
  const char* name;
  Format format;
  u8 opcode;  // bits [6:0]
  u8 funct3;
  u8 funct7;
};

// Metadata for `op`; valid for every Op except kIllegal.
const OpInfo& op_info(Op op);

constexpr unsigned kNumOps = static_cast<unsigned>(Op::kIllegal) + 1;

// The custom-0 (RoCC) major opcode carrying the SealPK / MPK extensions.
constexpr u8 kCustom0Opcode = 0x0B;

// Table-driven custom-0 decode: returns the unique op whose metadata matches
// (funct3, funct7), or kIllegal for every unknown combination. Derived from
// SEALPK_OP_LIST so a newly added custom instruction can never desync the
// decoder from the op table.
Op custom0_op(u32 funct3, u32 funct7);

// --- classification helpers (shared by the decoder, the tracer and the ---
// --- static verifier in src/analysis/) -----------------------------------
constexpr bool is_custom0(Op op) {
  switch (op) {
    case Op::kRdpkr:
    case Op::kWrpkr:
    case Op::kSealStart:
    case Op::kSealEnd:
    case Op::kSpkRange:
    case Op::kSpkSeal:
    case Op::kWrpkru:
    case Op::kRdpkru:
      return true;
    default:
      return false;
  }
}

// Instructions that (attempt to) rewrite pkey permissions — the gadget class
// ERIM-style binary inspection must confine to trusted call gates.
constexpr bool is_pkey_write(Op op) {
  return op == Op::kWrpkr || op == Op::kWrpkru;
}

constexpr bool is_pkey_read(Op op) {
  return op == Op::kRdpkr || op == Op::kRdpkru;
}

// seal.start / seal.end latch the permissible-WRPKR range CSRs; occurrences
// outside trusted gates can re-stage the range before pkey_perm_seal fires.
constexpr bool is_seal_marker(Op op) {
  return op == Op::kSealStart || op == Op::kSealEnd;
}

constexpr bool is_branch(Op op) {
  switch (op) {
    case Op::kBeq:
    case Op::kBne:
    case Op::kBlt:
    case Op::kBge:
    case Op::kBltu:
    case Op::kBgeu:
      return true;
    default:
      return false;
  }
}

constexpr bool is_load(Op op) {
  switch (op) {
    case Op::kLb:
    case Op::kLh:
    case Op::kLw:
    case Op::kLd:
    case Op::kLbu:
    case Op::kLhu:
    case Op::kLwu:
      return true;
    default:
      return false;
  }
}

constexpr bool is_store(Op op) {
  switch (op) {
    case Op::kSb:
    case Op::kSh:
    case Op::kSw:
    case Op::kSd:
      return true;
    default:
      return false;
  }
}

}  // namespace sealpk::isa
