// Decoded instruction representation and ABI register names.
#pragma once

#include <string>

#include "common/bits.h"
#include "isa/op.h"

namespace sealpk::isa {

// ABI register names (x0..x31).
enum Reg : u8 {
  zero = 0,
  ra = 1,
  sp = 2,
  gp = 3,
  tp = 4,
  t0 = 5,
  t1 = 6,
  t2 = 7,
  s0 = 8,
  s1 = 9,
  a0 = 10,
  a1 = 11,
  a2 = 12,
  a3 = 13,
  a4 = 14,
  a5 = 15,
  a6 = 16,
  a7 = 17,
  s2 = 18,
  s3 = 19,
  s4 = 20,
  s5 = 21,
  s6 = 22,
  s7 = 23,
  s8 = 24,
  s9 = 25,
  s10 = 26,  // reserved by our ABI for the shadow-stack pointer
  s11 = 27,  // reserved by our ABI for instrumentation scratch
  t3 = 28,
  t4 = 29,
  t5 = 30,
  t6 = 31,
};

const char* reg_name(u8 reg);

// A fully decoded instruction. `imm` is already sign-extended; for CSR ops
// `csr` holds the CSR address and `imm` the zero-extended uimm5 (kCsrI).
struct Inst {
  Op op = Op::kIllegal;
  u8 rd = 0;
  u8 rs1 = 0;
  u8 rs2 = 0;
  i64 imm = 0;
  u16 csr = 0;
  u32 raw = 0;

  bool operator==(const Inst&) const = default;
};

// Encodes `inst` into its 32-bit machine form. Throws CheckError if an
// operand does not fit the format (assembler bug in the caller).
u32 encode(const Inst& inst);

// Decodes a 32-bit word; unknown encodings yield op == kIllegal.
Inst decode(u32 raw);

// Human-readable rendering, e.g. "addi a0, sp, -16".
std::string disassemble(const Inst& inst);

}  // namespace sealpk::isa
