#include "analysis/verifier.h"

#include <sstream>

#include "analysis/cfg.h"
#include "analysis/dataflow.h"
#include "hw/pkr.h"
#include "os/syscall_abi.h"

namespace sealpk::analysis {

namespace {

const std::set<u64>& known_syscalls() {
  using namespace os::sys;
  static const std::set<u64> kKnown = {
      kWrite,    kExit,      kSchedYield, kSigaction,    kSigreturn,
      kGetTid,   kClone,     kMunmap,     kMmap,         kMprotect,
      kPkeyMprotect, kPkeyAlloc, kPkeyFree, kPkeySeal, kPkeyPermSeal,
      kReport,   kMark,      kVaultSeal,  kVaultUnseal,  kVaultReseal};
  return kKnown;
}

bool is_instrumentation_fn(const std::string& name) {
  return name.rfind("__ss_", 0) == 0 || name == "_start";
}

// The two-instruction sequences the kInline shadow-stack variant plants in
// every instrumented function; tolerated when allow_inline_push_pop is set.
bool is_inline_push_pop(const isa::Inst& inst) {
  switch (inst.op) {
    case isa::Op::kSd:  // sd ra, 0(s10)
      return inst.rs1 == isa::s10 && inst.rs2 == isa::ra && inst.imm == 0;
    case isa::Op::kLd:  // ld t5, 0(s10)
      return inst.rs1 == isa::s10 && inst.rd == isa::t5 && inst.imm == 0;
    case isa::Op::kAddi:  // addi s10, s10, +/-8
      return inst.rd == isa::s10 && inst.rs1 == isa::s10 &&
             (inst.imm == 8 || inst.imm == -8);
    default:
      return false;
  }
}

std::string describe(const isa::Inst& inst) { return isa::disassemble(inst); }

class Verifier {
 public:
  Verifier(const isa::Image& image, const VerifyOptions& opts)
      : image_(image), opts_(opts) {}

  Report run() {
    check_segments();
    const ImageCfg cfg = build_cfg(image_);
    for (const FunctionCfg& func : cfg.functions) {
      check_function(func);
    }
    return std::move(report_);
  }

 private:
  void add(Severity severity, Check check, const std::string& function,
           u64 pc, const std::string& message) {
    report_.add(Finding{severity, check, function, pc, message});
  }

  void check_segments() {
    for (const auto& seg : image_.segments) {
      if (seg.exec && seg.write) {
        add(Severity::kError, Check::kSegmentPerm, "<segment>", seg.addr,
            "segment is writable and executable (W^X violation): attacker "
            "data can become WRPKR gadgets");
      }
    }
  }

  void check_function(const FunctionCfg& func) {
    const bool trusted = opts_.trusted_gates.contains(func.name);
    const bool reserved_ok = trusted || is_instrumentation_fn(func.name);
    const ConstProp dataflow(func);

    for (const BasicBlock& bb : func.blocks) {
      for (const Site& site : bb.insts) {
        scan_occurrence(func, site, trusted);
        check_gate_regions(func, site);
        check_sealed_ranges(func, site, dataflow);
        check_illegal(func, bb, site);
        if (opts_.check_reserved_regs && !reserved_ok) {
          check_reserved_regs(func, site);
        }
        if (opts_.check_syscalls && site.inst.op == isa::Op::kEcall) {
          check_syscall(func, site, dataflow);
        }
      }
    }
  }

  // (1) ERIM-style occurrence scan: reachability is irrelevant — a gadget
  // mid-function is one indirect jump away.
  void scan_occurrence(const FunctionCfg& func, const Site& site,
                       bool trusted) {
    const isa::Op op = site.inst.op;
    if (trusted) return;
    if (isa::is_pkey_write(op)) {
      add(Severity::kError, Check::kGadget, func.name, site.pc,
          "permission-write gadget outside trusted gates: " + describe(site.inst));
    } else if (isa::is_pkey_read(op)) {
      add(Severity::kWarning, Check::kPkeyRead, func.name, site.pc,
          "pkey read outside trusted gates (leaks domain state): " +
              describe(site.inst));
    } else if (isa::is_seal_marker(op)) {
      add(Severity::kWarning, Check::kSealMarker, func.name, site.pc,
          "seal-range marker outside trusted gates (can re-stage the "
          "permissible range before pkey_perm_seal): " + describe(site.inst));
    } else if (op == isa::Op::kSpkRange || op == isa::Op::kSpkSeal) {
      add(Severity::kWarning, Check::kGadget, func.name, site.pc,
          "supervisor-only seal instruction in user text (traps at run "
          "time): " + describe(site.inst));
    }
  }

  // (1b) Positional gate-region lint: a pkey-write is only sanctioned at a
  // PC inside one of the declared gate regions. Purely geometric — it does
  // not care what function the site claims to belong to, so a gadget
  // appended after a blessed gate's seal range (the Garmr bypass shape) is
  // still flagged.
  void check_gate_regions(const FunctionCfg& func, const Site& site) {
    if (opts_.gate_regions.empty()) return;
    if (!isa::is_pkey_write(site.inst.op)) return;
    for (const auto& [lo, hi] : opts_.gate_regions) {
      if (site.pc >= lo && site.pc <= hi) return;
    }
    add(Severity::kError, Check::kGateEscape, func.name, site.pc,
        "pkey-write reachable outside every sanctioned gate region: " +
            describe(site.inst));
  }

  // (2) Sealed-range dataflow over resolved WRPKR pkey operands.
  void check_sealed_ranges(const FunctionCfg& func, const Site& site,
                           const ConstProp& dataflow) {
    if (site.inst.op != isa::Op::kWrpkr || opts_.sealed_pkey_ranges.empty()) {
      return;
    }
    const RegState* state = dataflow.state_before(site.pc);
    const AbsVal pkey_val =
        state != nullptr ? state->get(site.inst.rs1) : AbsVal::top();
    if (pkey_val.is_const()) {
      const u32 pkey = static_cast<u32>(pkey_val.value) & (hw::kNumPkeys - 1);
      auto it = opts_.sealed_pkey_ranges.find(pkey);
      if (it == opts_.sealed_pkey_ranges.end()) return;
      const auto [lo, hi] = it->second;
      if (site.pc < lo || site.pc > hi) {
        std::ostringstream msg;
        msg << "wrpkr names sealed pkey " << pkey
            << " but pc is outside its permissible range [0x" << std::hex
            << lo << ", 0x" << hi << "] — guaranteed SealViolation";
        add(Severity::kError, Check::kSealedRange, func.name, site.pc,
            msg.str());
      }
      return;
    }
    // Unresolved target: only quiet when the site itself sits inside one of
    // the sealed ranges (then even the sealed pkeys are legal here).
    for (const auto& [pkey, range] : opts_.sealed_pkey_ranges) {
      (void)pkey;
      if (site.pc >= range.first && site.pc <= range.second) return;
    }
    add(Severity::kWarning, Check::kSealedRangeMaybe, func.name, site.pc,
        "wrpkr with statically unresolved pkey under a sealed policy: " +
            describe(site.inst));
  }

  // (3a) Undecodable words.
  void check_illegal(const FunctionCfg& func, const BasicBlock& bb,
                     const Site& site) {
    if (site.inst.op != isa::Op::kIllegal) return;
    if (bb.reachable) {
      add(Severity::kError, Check::kReachableIllegal, func.name, site.pc,
          "undecodable instruction word reachable from the function entry");
    } else {
      add(Severity::kInfo, Check::kReachableIllegal, func.name, site.pc,
          "undecodable instruction word in unreachable code");
    }
  }

  // (3b) s10/s11 are reserved for the shadow-stack runtime (guest.h ABI).
  void check_reserved_regs(const FunctionCfg& func, const Site& site) {
    const isa::Inst& inst = site.inst;
    if (opts_.allow_inline_push_pop && is_inline_push_pop(inst)) return;
    const bool writes_reserved = inst.rd == isa::s10 || inst.rd == isa::s11;
    const bool mem_through_reserved =
        (isa::is_store(inst.op) || isa::is_load(inst.op)) &&
        (inst.rs1 == isa::s10 || inst.rs1 == isa::s11);
    if (!writes_reserved && !mem_through_reserved) return;
    add(Severity::kWarning, Check::kReservedReg, func.name, site.pc,
        std::string(writes_reserved ? "writes" : "accesses memory through") +
            " reserved instrumentation register: " + describe(inst));
  }

  // (3c) Syscall numbers against the kernel ABI.
  void check_syscall(const FunctionCfg& func, const Site& site,
                     const ConstProp& dataflow) {
    const RegState* state = dataflow.state_before(site.pc);
    const AbsVal nr = state != nullptr ? state->get(isa::a7) : AbsVal::top();
    if (nr.is_const()) {
      if (!known_syscalls().contains(nr.value)) {
        std::ostringstream msg;
        msg << "ecall with unknown syscall number " << nr.value
            << " (kernel returns ENOSYS)";
        add(Severity::kError, Check::kUnknownSyscall, func.name, site.pc,
            msg.str());
      }
    } else if (opts_.flag_unresolved_syscalls) {
      add(Severity::kInfo, Check::kUnresolvedSyscall, func.name, site.pc,
          "ecall whose syscall number (a7) constant propagation cannot "
          "resolve");
    }
  }

  const isa::Image& image_;
  const VerifyOptions& opts_;
  Report report_;
};

}  // namespace

std::set<std::string> default_trusted_gates() {
  return {"__pkey_set", "__pkey_set_blind", "__pkey_get",
          "__ss_push",  "__ss_init",       "__ss_range_end"};
}

Report verify_image(const isa::Image& image, const VerifyOptions& opts) {
  return Verifier(image, opts).run();
}

Report verify_program(const isa::Program& prog, const VerifyOptions& opts,
                      const isa::LinkOptions& link_opts) {
  return verify_image(prog.link(link_opts), opts);
}

}  // namespace sealpk::analysis
