// Static SealPK policy verifier (ERIM-style binary inspection).
//
// SealPK's WRPKR shares Intel WRPKRU's weakness: any occurrence reachable
// by untrusted code lets that code rewrite its own permission row. The
// hardware closes the hole *dynamically* (permission sealing, §III-C/§IV);
// this verifier closes it *statically*, before a program is admitted:
//
//   1. Occurrence scan — every WRPKR/WRPKRU (and RDPKR/seal-marker) site
//      outside a registered trusted-gate function is flagged, reachable or
//      not (attackers jump mid-function; ERIM's rule).
//   2. Sealed-range dataflow — constant propagation resolves, where
//      possible, the pkey each WRPKR names; a write naming a sealed pkey
//      from a PC outside the sealed [start, end] range is a statically
//      predicted SealViolation.
//   3. Structural lints — reachable undecodable words, s10/s11 use by
//      non-instrumentation code (our reserved-register ABI), ecalls with
//      unknown syscall numbers, writable+executable segments.
//
// Reports are consumed by the sealpk-verify CLI and the Machine/Kernel
// loader gate (LoadVerifyPolicy).
#pragma once

#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "analysis/report.h"
#include "isa/program.h"

namespace sealpk::analysis {

// The guest runtime's pkey helpers and the shadow-stack runtime are the
// default trusted call gates (the moral equivalent of ERIM's vetted
// call-gate sequences).
std::set<std::string> default_trusted_gates();

struct VerifyOptions {
  // Functions allowed to contain pkey-write/read and seal-marker
  // instructions. Callers add their own gates (e.g. a Figure-3 Func-A).
  std::set<std::string> trusted_gates = default_trusted_gates();

  // Statically known permission-seal policy: pkey -> inclusive [start, end]
  // PC range, mirroring what the PK-CAM will hold at run time. A resolved
  // WRPKR naming one of these pkeys from outside its range is an error.
  std::map<u32, std::pair<u64, u64>> sealed_pkey_ranges;

  // Sanctioned gate regions: inclusive [start, end] PC ranges that are the
  // ONLY places a pkey-write may appear. Empty disables the check. Unlike
  // the trusted_gates name test this is positional, so it also catches a
  // gadget hidden past the end of a blessed gate function — the Garmr
  // "WRPKR reachable outside the gate" bypass. Every violation is reported
  // as Check::kGateEscape (error), even inside trusted-named functions.
  std::vector<std::pair<u64, u64>> gate_regions;

  // Structural lints (all on by default).
  bool check_reserved_regs = true;   // s10/s11 discipline
  bool check_syscalls = true;        // ecall numbers against the kernel ABI
  bool flag_unresolved_syscalls = true;  // info when a7 cannot be resolved
  // Tolerate the exact inline shadow-stack push/pop sequences the kInline
  // pass plants in every instrumented function.
  bool allow_inline_push_pop = true;
};

// Inspects a linked image. This is the loader-gate entry point.
Report verify_image(const isa::Image& image, const VerifyOptions& opts = {});

// Convenience: links `prog` (with `link_opts`) and inspects the result.
Report verify_program(const isa::Program& prog, const VerifyOptions& opts = {},
                      const isa::LinkOptions& link_opts = {});

// Loader-gate policy for sim::Machine (and, via KernelConfig's
// admission_gate hook, any direct os::Kernel embedder).
enum class LoadVerifyPolicy : u8 {
  kOff,      // legacy behaviour: admit anything
  kWarn,     // verify, keep the report, admit regardless
  kEnforce,  // refuse images whose report has error-severity findings
};

}  // namespace sealpk::analysis
