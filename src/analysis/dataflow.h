// Constant-propagation dataflow over a FunctionCfg.
//
// A three-level lattice per register (bottom = unreached, a single 64-bit
// constant, top = unknown) propagated with a block worklist. This is what
// lets the verifier resolve, where possible, which pkey a WRPKR names and
// which syscall number an ecall carries — the abstract-interpretation half
// of the ERIM inspection (occurrence scanning alone cannot tell a write to
// a sealed row from a benign one).
#pragma once

#include <array>
#include <map>

#include "analysis/cfg.h"

namespace sealpk::analysis {

struct AbsVal {
  enum class Kind : u8 { kBottom, kConst, kTop };
  Kind kind = Kind::kBottom;
  u64 value = 0;

  static AbsVal bottom() { return {}; }
  static AbsVal top() { return {Kind::kTop, 0}; }
  static AbsVal constant(u64 v) { return {Kind::kConst, v}; }

  bool is_const() const { return kind == Kind::kConst; }
  bool is_bottom() const { return kind == Kind::kBottom; }

  bool operator==(const AbsVal&) const = default;
};

AbsVal join(AbsVal a, AbsVal b);

// Abstract register file. regs[0] (the zero register) is pinned to 0.
struct RegState {
  std::array<AbsVal, 32> regs{};

  static RegState entry();  // all top except zero

  AbsVal get(u8 reg) const {
    return reg == 0 ? AbsVal::constant(0) : regs[reg];
  }
  void set(u8 reg, AbsVal v) {
    if (reg != 0) regs[reg] = v;
  }
  // Returns true when `other` changed this state.
  bool join_with(const RegState& other);
};

// Applies one instruction's transfer function in place (AUIPC/JAL use the
// site's pc). Call-shaped instructions clobber the RISC-V caller-saved
// registers; anything the model does not evaluate precisely goes to top.
void transfer(const Site& site, RegState& state);

// Runs the analysis to fixpoint and records the register state *before*
// every reachable instruction.
class ConstProp {
 public:
  explicit ConstProp(const FunctionCfg& cfg);

  // State before the instruction at `pc`; nullptr when the instruction is
  // unreachable (treat every register as unknown).
  const RegState* state_before(u64 pc) const;

 private:
  std::map<u64, RegState> before_;
};

}  // namespace sealpk::analysis
