#include "analysis/report.h"

#include <algorithm>
#include <iomanip>

#include "common/json.h"

namespace sealpk::analysis {

namespace {

// print() and print_json() must list findings identically: errors first,
// then warnings, then notes, stable within a severity.
std::vector<const Finding*> severity_order(
    const std::vector<Finding>& findings) {
  std::vector<const Finding*> order;
  order.reserve(findings.size());
  for (const auto& f : findings) order.push_back(&f);
  std::stable_sort(order.begin(), order.end(),
                   [](const Finding* a, const Finding* b) {
                     return static_cast<int>(a->severity) >
                            static_cast<int>(b->severity);
                   });
  return order;
}

}  // namespace

const char* severity_name(Severity severity) {
  switch (severity) {
    case Severity::kInfo: return "info";
    case Severity::kWarning: return "warning";
    case Severity::kError: return "error";
  }
  return "?";
}

const char* check_name(Check check) {
  switch (check) {
    case Check::kGadget: return "wrpkr-gadget";
    case Check::kPkeyRead: return "rdpkr-outside-gate";
    case Check::kSealMarker: return "seal-marker-outside-gate";
    case Check::kSealedRange: return "sealed-range-violation";
    case Check::kSealedRangeMaybe: return "sealed-range-unresolved";
    case Check::kReachableIllegal: return "reachable-illegal";
    case Check::kReservedReg: return "reserved-reg";
    case Check::kUnknownSyscall: return "unknown-syscall";
    case Check::kUnresolvedSyscall: return "unresolved-syscall";
    case Check::kSegmentPerm: return "segment-perm";
    case Check::kGateEscape: return "wrpkr-outside-gate-region";
  }
  return "?";
}

size_t Report::count(Severity severity) const {
  return static_cast<size_t>(
      std::count_if(findings_.begin(), findings_.end(),
                    [severity](const Finding& f) {
                      return f.severity == severity;
                    }));
}

size_t Report::count(Check check) const {
  return static_cast<size_t>(std::count_if(
      findings_.begin(), findings_.end(),
      [check](const Finding& f) { return f.check == check; }));
}

void Report::print(std::ostream& os, const std::string& program) const {
  if (!program.empty()) {
    os << program << ": ";
  }
  if (findings_.empty()) {
    os << "clean (no findings)\n";
    return;
  }
  os << count(Severity::kError) << " error(s), " << count(Severity::kWarning)
     << " warning(s), " << count(Severity::kInfo) << " note(s)\n";
  for (const Finding* f : severity_order(findings_)) {
    os << "  [" << severity_name(f->severity) << "] " << check_name(f->check)
       << " " << f->function << " (pc 0x" << std::hex << f->pc << std::dec
       << "): " << f->message << "\n";
  }
}

void Report::print_json(std::ostream& os, const std::string& program,
                        const std::string& indent) const {
  os << indent << "{\n";
  if (!program.empty()) {
    os << indent << "  \"program\": \"" << json_escape(program) << "\",\n";
  }
  os << indent << "  \"admissible\": " << (admissible() ? "true" : "false")
     << ",\n"
     << indent << "  \"errors\": " << count(Severity::kError) << ",\n"
     << indent << "  \"warnings\": " << count(Severity::kWarning) << ",\n"
     << indent << "  \"notes\": " << count(Severity::kInfo) << ",\n"
     << indent << "  \"findings\": [";
  bool first = true;
  for (const Finding* f : severity_order(findings_)) {
    os << (first ? "\n" : ",\n") << indent << "    {\"severity\": \""
       << severity_name(f->severity) << "\", \"check\": \""
       << check_name(f->check) << "\", \"function\": \""
       << json_escape(f->function) << "\", \"pc\": " << f->pc
       << ", \"message\": \"" << json_escape(f->message) << "\"}";
    first = false;
  }
  if (!first) os << "\n" << indent << "  ";
  os << "]\n" << indent << "}";
}

}  // namespace sealpk::analysis
