#include "analysis/cfg.h"

#include <algorithm>
#include <set>

#include "common/check.h"

namespace sealpk::analysis {

namespace {

// Reads the little-endian word at `pc`, or returns false when the segment
// does not cover all four bytes.
bool word_at(const isa::Segment& seg, u64 pc, u32* out) {
  if (pc < seg.addr || pc + 4 > seg.addr + seg.bytes.size()) return false;
  const u64 off = pc - seg.addr;
  *out = static_cast<u32>(seg.bytes[off]) |
         static_cast<u32>(seg.bytes[off + 1]) << 8 |
         static_cast<u32>(seg.bytes[off + 2]) << 16 |
         static_cast<u32>(seg.bytes[off + 3]) << 24;
  return true;
}

struct Terminator {
  bool terminates = false;
  BlockExit exit = BlockExit::kFallthrough;
  bool has_target = false;   // branch/jump target inside the function
  u64 target = 0;
  bool has_fallthrough = false;
  bool is_call = false;      // records inst target as a call
  u64 call_target = 0;
};

Terminator classify(const Site& site, u64 func_start, u64 func_end) {
  Terminator t;
  const isa::Inst& inst = site.inst;
  const u64 pc = site.pc;
  if (isa::is_branch(inst.op)) {
    t.terminates = true;
    t.exit = BlockExit::kBranch;
    t.has_fallthrough = true;
    const u64 target = pc + static_cast<u64>(inst.imm);
    if (target >= func_start && target < func_end) {
      t.has_target = true;
      t.target = target;
    }
    return t;
  }
  switch (inst.op) {
    case isa::Op::kJal: {
      t.terminates = true;
      const u64 target = pc + static_cast<u64>(inst.imm);
      const bool internal = target >= func_start && target < func_end;
      if (inst.rd != isa::zero) {
        // A call: control returns to pc+4. Intra-function jal_to(l, ra)
        // also lands here, which is safe (the target leader still exists).
        t.exit = BlockExit::kCall;
        t.has_fallthrough = true;
        t.is_call = true;
        t.call_target = target;
        if (internal) {
          t.has_target = true;
          t.target = target;
        }
      } else if (internal) {
        t.exit = BlockExit::kJump;
        t.has_target = true;
        t.target = target;
      } else {
        t.exit = BlockExit::kTailCall;
        t.is_call = true;
        t.call_target = target;
      }
      return t;
    }
    case isa::Op::kJalr:
      t.terminates = true;
      if (inst.rd == isa::zero && inst.rs1 == isa::ra && inst.imm == 0) {
        t.exit = BlockExit::kReturn;
      } else if (inst.rd != isa::zero) {
        // Indirect call: assume it returns.
        t.exit = BlockExit::kIndirect;
        t.has_fallthrough = true;
      } else {
        t.exit = BlockExit::kIndirect;
      }
      return t;
    case isa::Op::kEcall:
    case isa::Op::kEbreak:
      // The kernel resumes at pc+4 (or never, for exit — conservatively a
      // fallthrough edge).
      t.terminates = true;
      t.exit = BlockExit::kTrap;
      t.has_fallthrough = true;
      return t;
    case isa::Op::kIllegal:
      t.terminates = true;
      t.exit = BlockExit::kIllegal;
      return t;
    default:
      return t;
  }
}

FunctionCfg build_function(const std::string& name, u64 start, u64 end,
                           const isa::Segment& seg) {
  FunctionCfg cfg;
  cfg.name = name;
  cfg.start = start;
  cfg.end = end;

  // Decode linearly.
  std::vector<Site> sites;
  sites.reserve((end - start) / 4);
  for (u64 pc = start; pc + 4 <= end; pc += 4) {
    u32 word = 0;
    if (!word_at(seg, pc, &word)) break;
    sites.push_back(Site{pc, isa::decode(word)});
  }
  if (sites.empty()) return cfg;

  // Leaders: the entry, every internal control-transfer target, and every
  // instruction after a terminator.
  std::set<u64> leaders;
  leaders.insert(start);
  for (const Site& site : sites) {
    const Terminator t = classify(site, start, end);
    if (!t.terminates) continue;
    if (t.has_target) leaders.insert(t.target);
    if (site.pc + 4 < end) leaders.insert(site.pc + 4);
  }

  // Form blocks.
  for (const Site& site : sites) {
    if (leaders.contains(site.pc) || cfg.blocks.empty()) {
      cfg.block_at[site.pc] = static_cast<u32>(cfg.blocks.size());
      cfg.blocks.push_back(BasicBlock{.start = site.pc});
    }
    cfg.blocks.back().insts.push_back(site);
  }

  // Successor edges.
  for (u32 bi = 0; bi < cfg.blocks.size(); ++bi) {
    BasicBlock& bb = cfg.blocks[bi];
    const Site& last = bb.insts.back();
    const Terminator t = classify(last, start, end);
    bb.exit = t.terminates ? t.exit : BlockExit::kFallthrough;
    if (t.is_call) cfg.call_targets.push_back(t.call_target);
    if (t.exit == BlockExit::kIndirect) cfg.has_indirect_jump = true;
    auto link = [&](u64 pc) {
      auto it = cfg.block_at.find(pc);
      if (it != cfg.block_at.end()) bb.succs.push_back(it->second);
    };
    if (t.terminates) {
      if (t.has_target) link(t.target);
      if (t.has_fallthrough) link(last.pc + 4);
    } else {
      link(last.pc + 4);  // plain fallthrough into the next block
    }
  }

  // Reachability from the entry block.
  std::vector<u32> work{0};
  cfg.blocks[0].reachable = true;
  while (!work.empty()) {
    const u32 bi = work.back();
    work.pop_back();
    for (const u32 succ : cfg.blocks[bi].succs) {
      if (!cfg.blocks[succ].reachable) {
        cfg.blocks[succ].reachable = true;
        work.push_back(succ);
      }
    }
  }
  return cfg;
}

}  // namespace

const FunctionCfg* ImageCfg::function_at(u64 pc) const {
  auto it = std::upper_bound(
      starts.begin(), starts.end(), std::make_pair(pc, ~u32{0}));
  if (it == starts.begin()) return nullptr;
  --it;
  const FunctionCfg& f = functions[it->second];
  return pc >= f.start && pc < f.end ? &f : nullptr;
}

const FunctionCfg* ImageCfg::function_named(const std::string& name) const {
  for (const auto& f : functions)
    if (f.name == name) return &f;
  return nullptr;
}

ImageCfg build_cfg(const isa::Image& image) {
  ImageCfg out;
  for (const auto& seg : image.segments) {
    if (!seg.exec) continue;
    const u64 seg_end = seg.addr + seg.bytes.size();
    // Functions covering this segment, in address order.
    std::vector<std::pair<u64, std::pair<u64, std::string>>> ranges;
    for (const auto& [name, range] : image.func_ranges) {
      if (range.first >= seg.addr && range.first < seg_end) {
        ranges.push_back({range.first, {range.second, name}});
      }
    }
    std::sort(ranges.begin(), ranges.end());
    u64 cursor = seg.addr;
    auto add = [&](const std::string& name, u64 start, u64 end) {
      if (end <= start) return;
      out.functions.push_back(build_function(name, start, end, seg));
    };
    for (const auto& [start, rest] : ranges) {
      if (start > cursor) {
        // Executable bytes no function claims: decode them anyway — a
        // gadget hiding between functions is still a gadget.
        add("<unattributed>", cursor, start);
      }
      add(rest.second, start, std::min(rest.first, seg_end));
      cursor = std::max(cursor, rest.first);
    }
    if (cursor < seg_end) add("<unattributed>", cursor, seg_end);
  }
  for (u32 i = 0; i < out.functions.size(); ++i) {
    out.starts.push_back({out.functions[i].start, i});
  }
  std::sort(out.starts.begin(), out.starts.end());
  return out;
}

}  // namespace sealpk::analysis
