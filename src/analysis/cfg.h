// Per-function control-flow graphs over a linked guest Image.
//
// The verifier operates on the *binary* (the linked Image), not the
// assembler IR: that is the ERIM model — inspect exactly the bytes that
// will execute, after every instrumentation pass and the linker have had
// their say. Image::func_ranges partitions the text segments into
// functions; each function is decoded and split into basic blocks.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "isa/inst.h"
#include "isa/program.h"

namespace sealpk::analysis {

struct Site {
  u64 pc = 0;
  isa::Inst inst;
};

// Kind of control transfer that terminates a basic block.
enum class BlockExit : u8 {
  kFallthrough,  // no terminator: runs into the next block
  kBranch,       // conditional: taken target + fallthrough
  kJump,         // unconditional jal inside the function
  kCall,         // jal to another function; control returns to pc+4
  kTailCall,     // unconditional transfer out of the function
  kReturn,       // jalr zero, ra, 0
  kIndirect,     // jalr through an arbitrary register: targets unknown
  kTrap,         // ecall/ebreak fall through after the kernel returns
  kIllegal,      // undecodable word: execution cannot continue
};

struct BasicBlock {
  u64 start = 0;
  std::vector<Site> insts;
  BlockExit exit = BlockExit::kFallthrough;
  std::vector<u32> succs;  // indices into FunctionCfg::blocks
  bool reachable = false;  // from the function entry
};

struct FunctionCfg {
  std::string name;
  u64 start = 0;
  u64 end = 0;  // exclusive
  std::vector<BasicBlock> blocks;
  std::map<u64, u32> block_at;  // block start pc -> index
  // jal-call targets (absolute addresses) made by this function.
  std::vector<u64> call_targets;
  bool has_indirect_jump = false;
};

// Whole-image view: one FunctionCfg per entry of image.func_ranges plus a
// synthetic "<unattributed>" function for executable bytes outside every
// range (none are emitted by our linker, but hand-built images can).
struct ImageCfg {
  std::vector<FunctionCfg> functions;
  // Sorted (start, index) pairs for pc -> function lookup.
  std::vector<std::pair<u64, u32>> starts;

  const FunctionCfg* function_at(u64 pc) const;
  const FunctionCfg* function_named(const std::string& name) const;
};

// Decodes every executable segment of `image` and builds all CFGs.
ImageCfg build_cfg(const isa::Image& image);

}  // namespace sealpk::analysis
