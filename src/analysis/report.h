// Findings report for the static SealPK policy verifier.
//
// Every check emits Findings; a Report aggregates them and renders the
// human-readable listing the sealpk-verify CLI prints. Severity kError is
// what the loader gate refuses on; kWarning/kInfo are advisory.
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "common/bits.h"

namespace sealpk::analysis {

enum class Severity : u8 { kInfo, kWarning, kError };

const char* severity_name(Severity severity);

// Which check produced the finding (stable identifiers for tests/tools).
enum class Check : u8 {
  kGadget,             // pkey-write instruction outside a trusted gate
  kPkeyRead,           // pkey-read instruction outside a trusted gate
  kSealMarker,         // seal.start/seal.end outside a trusted gate
  kSealedRange,        // WRPKR naming a sealed pkey with PC out of range
  kSealedRangeMaybe,   // WRPKR with unresolved pkey under a sealed policy
  kReachableIllegal,   // undecodable word reachable from a function entry
  kReservedReg,        // s10/s11 use by non-instrumentation code
  kUnknownSyscall,     // ecall with a constant a7 outside the kernel ABI
  kUnresolvedSyscall,  // ecall whose a7 constant propagation cannot resolve
  kSegmentPerm,        // writable+executable (W^X violation) segment
  kGateEscape,         // pkey-write at a PC outside every sanctioned gate
                       // region (fires even inside trusted-named functions)
};

const char* check_name(Check check);

struct Finding {
  Severity severity = Severity::kError;
  Check check = Check::kGadget;
  std::string function;  // enclosing function, or "<unattributed>"
  u64 pc = 0;            // absolute address of the offending site
  std::string message;   // one-line description incl. disassembly
};

class Report {
 public:
  void add(Finding finding) { findings_.push_back(std::move(finding)); }

  const std::vector<Finding>& findings() const { return findings_; }
  bool empty() const { return findings_.empty(); }

  size_t count(Severity severity) const;
  size_t count(Check check) const;

  // The loader-gate criterion: no error-severity findings.
  bool admissible() const { return count(Severity::kError) == 0; }
  // The CI criterion for shipped programs: nothing to say at all.
  bool clean() const { return findings_.empty(); }

  // Renders "  [error] gadget main+0x14 (pc 0x10014): ..." style lines,
  // errors first. `program` labels the header line; empty reports print a
  // single "clean" line.
  void print(std::ostream& os, const std::string& program = "") const;

  // Machine-readable form of the same listing (one JSON object), so CI can
  // diff verifier output structurally. Findings appear in the same
  // errors-first order as print(). `indent` prefixes every emitted line,
  // letting callers nest the object inside a larger document.
  void print_json(std::ostream& os, const std::string& program = "",
                  const std::string& indent = "") const;

 private:
  std::vector<Finding> findings_;
};

}  // namespace sealpk::analysis
