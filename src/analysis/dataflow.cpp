#include "analysis/dataflow.h"

#include <deque>

#include "common/bits.h"

namespace sealpk::analysis {

namespace {

constexpr u8 kCallerSaved[] = {
    isa::ra, isa::t0, isa::t1, isa::t2, isa::a0, isa::a1, isa::a2,
    isa::a3, isa::a4, isa::a5, isa::a6, isa::a7, isa::t3, isa::t4,
    isa::t5, isa::t6};

i64 sext32(u64 v) { return static_cast<i64>(static_cast<i32>(v)); }

// Evaluates a binary/immediate ALU op on concrete operands, mirroring the
// hart's semantics for the subset the verifier needs. Returns top for ops
// it does not model (divisions, CSRs, ...).
AbsVal eval_alu(isa::Op op, u64 a, u64 b) {
  using isa::Op;
  switch (op) {
    case Op::kAddi:
    case Op::kAdd: return AbsVal::constant(a + b);
    case Op::kSub: return AbsVal::constant(a - b);
    case Op::kAndi:
    case Op::kAnd: return AbsVal::constant(a & b);
    case Op::kOri:
    case Op::kOr: return AbsVal::constant(a | b);
    case Op::kXori:
    case Op::kXor: return AbsVal::constant(a ^ b);
    case Op::kSlti:
    case Op::kSlt:
      return AbsVal::constant(
          static_cast<i64>(a) < static_cast<i64>(b) ? 1 : 0);
    case Op::kSltiu:
    case Op::kSltu: return AbsVal::constant(a < b ? 1 : 0);
    case Op::kSlli:
    case Op::kSll: return AbsVal::constant(a << (b & 63));
    case Op::kSrli:
    case Op::kSrl: return AbsVal::constant(a >> (b & 63));
    case Op::kSrai:
    case Op::kSra:
      return AbsVal::constant(
          static_cast<u64>(static_cast<i64>(a) >> (b & 63)));
    case Op::kAddiw:
    case Op::kAddw: return AbsVal::constant(static_cast<u64>(sext32(a + b)));
    case Op::kSubw: return AbsVal::constant(static_cast<u64>(sext32(a - b)));
    case Op::kSlliw:
    case Op::kSllw:
      return AbsVal::constant(static_cast<u64>(sext32(a << (b & 31))));
    case Op::kSrliw:
    case Op::kSrlw:
      return AbsVal::constant(
          static_cast<u64>(sext32(static_cast<u32>(a) >> (b & 31))));
    case Op::kSraiw:
    case Op::kSraw:
      return AbsVal::constant(
          static_cast<u64>(static_cast<i64>(static_cast<i32>(a)) >> (b & 31)));
    case Op::kMul: return AbsVal::constant(a * b);
    case Op::kMulw: return AbsVal::constant(static_cast<u64>(sext32(a * b)));
    default: return AbsVal::top();
  }
}

bool is_imm_alu(isa::Format fmt) {
  return fmt == isa::Format::kI || fmt == isa::Format::kShift64 ||
         fmt == isa::Format::kShift32;
}

}  // namespace

AbsVal join(AbsVal a, AbsVal b) {
  if (a.is_bottom()) return b;
  if (b.is_bottom()) return a;
  if (a.is_const() && b.is_const() && a.value == b.value) return a;
  return AbsVal::top();
}

RegState RegState::entry() {
  RegState s;
  for (auto& r : s.regs) r = AbsVal::top();
  s.regs[0] = AbsVal::constant(0);
  return s;
}

bool RegState::join_with(const RegState& other) {
  bool changed = false;
  for (unsigned i = 1; i < regs.size(); ++i) {
    const AbsVal merged = join(regs[i], other.regs[i]);
    if (!(merged == regs[i])) {
      regs[i] = merged;
      changed = true;
    }
  }
  return changed;
}

void transfer(const Site& site, RegState& state) {
  using isa::Op;
  const isa::Inst& inst = site.inst;
  const isa::Format fmt =
      inst.op == Op::kIllegal ? isa::Format::kSys : isa::op_info(inst.op).format;

  switch (inst.op) {
    case Op::kLui:
      state.set(inst.rd, AbsVal::constant(static_cast<u64>(inst.imm)));
      return;
    case Op::kAuipc:
      state.set(inst.rd,
                AbsVal::constant(site.pc + static_cast<u64>(inst.imm)));
      return;
    case Op::kJal:
      // Treated as a call by the caller when the target leaves the
      // function; here only the link register effect matters.
      if (inst.rd != isa::zero) {
        state.set(inst.rd, AbsVal::constant(site.pc + 4));
      }
      return;
    case Op::kJalr:
      if (inst.rd != isa::zero) {
        state.set(inst.rd, AbsVal::constant(site.pc + 4));
      }
      return;
    case Op::kEcall:
      // Kernel ABI: result in a0, every other register preserved.
      state.set(isa::a0, AbsVal::top());
      return;
    default:
      break;
  }

  if (isa::is_branch(inst.op) || isa::is_store(inst.op) ||
      inst.op == Op::kFence || inst.op == Op::kFenceI ||
      inst.op == Op::kEbreak || inst.op == Op::kIllegal ||
      inst.op == Op::kWrpkr || inst.op == Op::kWrpkru ||
      inst.op == Op::kSealStart || inst.op == Op::kSealEnd ||
      inst.op == Op::kSpkRange || inst.op == Op::kSpkSeal) {
    return;  // no register results
  }

  if (isa::is_load(inst.op) || isa::is_pkey_read(inst.op) ||
      fmt == isa::Format::kCsr || fmt == isa::Format::kCsrI) {
    state.set(inst.rd, AbsVal::top());
    return;
  }

  // ALU forms.
  const AbsVal lhs = state.get(inst.rs1);
  const AbsVal rhs = is_imm_alu(fmt) ? AbsVal::constant(static_cast<u64>(inst.imm))
                                     : state.get(inst.rs2);
  if (lhs.is_const() && rhs.is_const()) {
    state.set(inst.rd, eval_alu(inst.op, lhs.value, rhs.value));
  } else {
    state.set(inst.rd, AbsVal::top());
  }
}

ConstProp::ConstProp(const FunctionCfg& cfg) {
  if (cfg.blocks.empty()) return;
  std::vector<RegState> in(cfg.blocks.size());
  std::vector<bool> seeded(cfg.blocks.size(), false);
  in[0] = RegState::entry();
  seeded[0] = true;

  std::deque<u32> work{0};
  std::vector<bool> queued(cfg.blocks.size(), false);
  queued[0] = true;

  auto flow_block = [&](u32 bi, RegState state) {
    const BasicBlock& bb = cfg.blocks[bi];
    for (const Site& site : bb.insts) {
      transfer(site, state);
    }
    // A call clobbers the caller-saved registers once the callee returns.
    if (bb.exit == BlockExit::kCall || bb.exit == BlockExit::kIndirect ||
        bb.exit == BlockExit::kTailCall) {
      for (const u8 reg : kCallerSaved) state.set(reg, AbsVal::top());
    }
    return state;
  };

  while (!work.empty()) {
    const u32 bi = work.front();
    work.pop_front();
    queued[bi] = false;
    const RegState out = flow_block(bi, in[bi]);
    for (const u32 succ : cfg.blocks[bi].succs) {
      bool changed;
      if (!seeded[succ]) {
        in[succ] = out;
        seeded[succ] = true;
        changed = true;
      } else {
        changed = in[succ].join_with(out);
      }
      if (changed && !queued[succ]) {
        work.push_back(succ);
        queued[succ] = true;
      }
    }
  }

  // Final pass: record the state before every instruction of every seeded
  // (reached) block.
  for (u32 bi = 0; bi < cfg.blocks.size(); ++bi) {
    if (!seeded[bi]) continue;
    RegState state = in[bi];
    for (const Site& site : cfg.blocks[bi].insts) {
      before_.emplace(site.pc, state);
      transfer(site, state);
    }
  }
}

const RegState* ConstProp::state_before(u64 pc) const {
  auto it = before_.find(pc);
  return it == before_.end() ? nullptr : &it->second;
}

}  // namespace sealpk::analysis
