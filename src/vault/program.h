// Guest-program builder for the sealed-storage vault workload
// (DESIGN.md §14).
//
// The built image is a one-process secret store: an owner domain
// (pkey 1, kRw) drives seal/reseal/unseal operations against a vault
// region tagged with a write-only, perm-sealed domain (pkey 2). The guest
// can only ever APPEND to the vault — intent records word by word, payload
// bytes straight from registers — and must go through the kernel's vault
// syscalls for anything that reads it back. Every operation is planned
// host-side at build time, so the builder also produces the oracle: the
// exact payload bytes each operation stores and the ledger an
// uninterrupted run must end with.
#pragma once

#include <string>
#include <vector>

#include "isa/program.h"
#include "vault/format.h"

namespace sealpk::vault {

// Guest pkey numbering is part of the protocol (pkey_alloc hands out 1,
// then 2; the guest asserts both and exits kExitBadPkey otherwise).
inline constexpr u32 kOwnerPkey = 1;
inline constexpr u32 kVaultPkey = 2;

// Guest exit codes (0 = clean completion).
inline constexpr i64 kExitBadPkey = 93;         // pkey numbering assert
inline constexpr i64 kExitSealFailed = 94;      // seal/reseal syscall error
inline constexpr i64 kExitUnsealFailed = 95;    // unseal syscall error
inline constexpr i64 kExitRevealMismatch = 96;  // unsealed bytes diverged

enum class OpType : u8 { kSeal, kReseal, kUnseal };

struct VaultOp {
  OpType type = OpType::kSeal;
  u64 id = 0;
  u64 slot = 0;  // payload slot (seal/reseal); unused for unseal
  u64 len = 0;   // payload bytes
  u64 seq = 0;   // version (1 for seals, strictly higher for reseals)
  u64 journal_index = 0;  // intent record index 2r (seal/reseal only)
};

struct VaultSpec {
  u64 n_slots = 8;     // must be >= seals + reseals (copy-on-write slots)
  u64 slot_size = 64;  // bytes per slot, multiple of 8
  u32 seals = 5;
  u32 reseals = 2;
  u32 unseals = 3;
  u64 seed = 1;
};

struct BuiltVault {
  isa::Image image;
  Geometry geo;
  std::vector<VaultOp> ops;  // execution order (seals, reseals, unseals)
  // Final-state oracle for an uninterrupted run.
  Ledger expected;
  std::string expected_ledger;  // ledger_string(expected)
  // Payload bytes per committed bundle version, keyed like the ops list
  // (seal/reseal entries only). The sweep's confidentiality scan hunts
  // these byte strings outside the vault.
  std::vector<std::vector<u8>> payloads;
};

// Deterministic payload stream: word j of operation (id, seq) is
// mix64(op_key + j). Shared verbatim by the guest emitter (as immediates +
// in-register mixing) and the host oracle.
u64 op_key(u64 seed, u64 id, u64 seq);
std::vector<u8> payload_bytes(u64 seed, u64 id, u64 seq, u64 len);

// The operation schedule derived from a spec (pure function of the spec).
std::vector<VaultOp> plan_ops(const VaultSpec& spec);

Geometry geometry_for(const VaultSpec& spec);

BuiltVault build_vault(const VaultSpec& spec);

}  // namespace sealpk::vault
