// Crash-anywhere durability sweep for the sealed-storage vault
// (DESIGN.md §14).
//
// The sweep first runs the vault workload to completion once (the learning
// run: it must exit cleanly and reproduce the builder's expected ledger),
// then kills a fresh machine at every sampled crash instret — densely
// around every journal-record write so each word boundary of every intent
// record is covered, plus a uniform stride across the whole run — and
// checks three invariants against the cold state:
//   (a) integrity: every recoverable bundle is byte-exact one of the
//       planned payload versions (never a torn or foreign payload),
//   (b) durability: every commit the kernel acknowledged (its kVaultCommit
//       mark) is still recoverable at that or a newer sequence number,
//   (c) confidentiality: no committed secret prefix is readable from any
//       mapping outside the vault region and the owner's reveal page.
// A subset of points additionally restores the machine's last known-good
// checkpoint and re-runs to completion, asserting the recovered run still
// lands on the expected final ledger. With `chaos` set, seeded vault-kind
// fault injection runs on top and the invariants weaken exactly to
// detection: a flipped record may lose data but must never be served.
//
// Per-point verdicts land in slots indexed by crash point, so the
// canonical report is byte-identical for any worker thread count.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "vault/program.h"

namespace sealpk::vault {

struct SweepConfig {
  VaultSpec spec;
  u64 min_points = 200;     // floor on sampled crash points
  u64 stride_points = 160;  // uniform samples across the learning run
  unsigned threads = 1;     // fleet workers (0 = one per hardware thread)
  u64 rollback_every = 4;   // every Nth point also resumes from checkpoint
  u64 checkpoint_interval = 2'000;
  bool chaos = false;
  u64 chaos_runs = 6;
  u64 chaos_seed = 7;
  double chaos_rate = 2e-4;
  u64 chaos_max_faults = 3;
};

struct PointVerdict {
  u64 instret = 0;
  bool ok = true;
  bool resumed = false;       // checkpoint-resume leg ran at this point
  std::string failure;        // first violated invariant ("" when ok)
  u64 live = 0;               // recoverable bundles at the crash point
  u64 commits = 0;
  u64 torn = 0;
};

struct ChaosVerdict {
  u64 seed = 0;
  bool ok = true;
  i64 exit_code = 0;
  u64 injected = 0;
  u64 detected = 0;  // kernel refusals + replay-level torn/mismatch counts
  std::string failure;
};

struct SweepResult {
  bool ok = false;
  std::string learning_failure;  // nonempty when the learning run failed
  u64 total_instructions = 0;    // learning-run length
  u64 points = 0;
  u64 boundary_points = 0;  // points from journal-record dense windows
  u64 resume_points = 0;
  u64 failures = 0;
  std::vector<PointVerdict> verdicts;  // ascending crash instret
  std::vector<ChaosVerdict> chaos;     // chaos mode only
  std::string final_ledger;            // canonical expected/observed ledger
  std::string canonical;               // the byte-identity oracle
};

SweepResult run_sweep(const SweepConfig& cfg);

// Machine-readable verdict for `sealpk-vault sweep --json` (and the CI
// artifact uploaded on failure).
void write_sweep_json(std::ostream& os, const SweepConfig& cfg,
                      const SweepResult& r);

}  // namespace sealpk::vault
