#include "vault/program.h"

#include <algorithm>
#include <map>

#include "os/syscall_abi.h"
#include "runtime/guest.h"

using namespace sealpk::isa;

namespace sealpk::vault {

namespace {

constexpr u64 kPageSize = 4096;

std::string intent_name(u64 r) {
  return "__vault_intent_" + std::to_string(r);
}

// splitmix64 finalizer, inline — mirrors serve's emit_mix so the payload
// stream never touches memory until the store into the vault slot itself.
void emit_mix(Function& f, u8 v, u8 tmp1, u8 tmp2) {
  f.li(tmp1, static_cast<i64>(0x9E3779B97F4A7C15ULL));
  f.add(v, v, tmp1);
  f.srli(tmp2, v, 30);
  f.xor_(v, v, tmp2);
  f.li(tmp1, static_cast<i64>(0xBF58476D1CE4E5B9ULL));
  f.mul(v, v, tmp1);
  f.srli(tmp2, v, 27);
  f.xor_(v, v, tmp2);
  f.li(tmp1, static_cast<i64>(0x94D049BB133111EBULL));
  f.mul(v, v, tmp1);
  f.srli(tmp2, v, 31);
  f.xor_(v, v, tmp2);
}

void emit_exit(Function& f, i64 code) {
  f.li(a0, code);
  rt::syscall(f, os::sys::kExit);
}

// Seal / reseal operation: intent mark, word-by-word intent record (the
// tearable part the crash sweep hammers), in-register payload generation
// straight into the write-only slot, then the commit ecall.
void emit_seal_op(Function& f, const Geometry& geo, const VaultOp& op,
                  u64 seed) {
  f.li(a0, static_cast<i64>(os::mark::kVaultIntent));
  f.li(a1, static_cast<i64>(op.id));
  f.li(a2, static_cast<i64>(op.seq));
  f.li(a3, kVaultPkey);
  rt::syscall(f, os::sys::kMark);

  // Intent record: 8 x (ld, sd) from the precomputed rodata blob into
  // journal slot 2r. Each sd is an independent crash boundary.
  f.la(t0, intent_name(op.journal_index / 2));
  f.la(t1, "__vault_base");
  f.ld(t1, 0, t1);
  f.li(t2, static_cast<i64>(geo.record_off(op.journal_index)));
  f.add(t1, t1, t2);
  for (i64 i = 0; i < 8; ++i) {
    f.ld(t3, 8 * i, t0);
    f.sd(t3, 8 * i, t1);
  }

  // Payload: word j = mix64(op_key + j), generated in registers and stored
  // directly into the slot — no plaintext staging buffer anywhere.
  f.la(t1, "__vault_base");
  f.ld(t1, 0, t1);
  f.li(t2, static_cast<i64>(geo.slot_off(op.slot)));
  f.add(t1, t1, t2);
  f.li(t0, static_cast<i64>(op_key(seed, op.id, op.seq)));
  f.li(t2, 0);
  f.li(t3, static_cast<i64>(op.len / 8));
  const Label loop = f.new_label();
  f.bind(loop);
  f.add(t4, t0, t2);
  emit_mix(f, t4, t5, t6);
  f.slli(t5, t2, 3);
  f.add(t5, t1, t5);
  f.sd(t4, 0, t5);
  f.addi(t2, t2, 1);
  f.blt(t2, t3, loop);

  f.la(a0, "__vault_base");
  f.ld(a0, 0, a0);
  f.li(a1, static_cast<i64>(geo.record_off(op.journal_index)));
  rt::syscall(f, op.type == OpType::kSeal ? os::sys::kVaultSeal
                                          : os::sys::kVaultReseal);
  const Label ok = f.new_label();
  f.beqz(a0, ok);
  emit_exit(f, kExitSealFailed);
  f.bind(ok);
}

// Unseal operation: kernel copies the newest committed version into the
// owner-tagged reveal page; the guest re-derives the stream and compares
// word by word, then zeroises the reveal page before moving on.
void emit_unseal_op(Function& f, const VaultOp& op, u64 seed) {
  f.la(a0, "__vault_base");
  f.ld(a0, 0, a0);
  f.li(a1, static_cast<i64>(op.id));
  f.la(a2, "__reveal_base");
  f.ld(a2, 0, a2);
  rt::syscall(f, os::sys::kVaultUnseal);
  const Label len_ok = f.new_label();
  f.li(t0, static_cast<i64>(op.len));
  f.beq(a0, t0, len_ok);
  emit_exit(f, kExitUnsealFailed);
  f.bind(len_ok);

  f.la(t1, "__reveal_base");
  f.ld(t1, 0, t1);
  f.li(t0, static_cast<i64>(op_key(seed, op.id, op.seq)));
  f.li(t2, 0);
  f.li(t3, static_cast<i64>(op.len / 8));
  const Label vloop = f.new_label(), fail = f.new_label(),
              after = f.new_label();
  f.bind(vloop);
  f.add(t4, t0, t2);
  emit_mix(f, t4, t5, t6);
  f.slli(t5, t2, 3);
  f.add(t5, t1, t5);
  f.ld(t6, 0, t5);
  f.bne(t4, t6, fail);
  f.addi(t2, t2, 1);
  f.blt(t2, t3, vloop);
  // Zeroise: the reveal page must never keep a secret beyond the check.
  f.li(t2, 0);
  const Label zloop = f.new_label();
  f.bind(zloop);
  f.slli(t5, t2, 3);
  f.add(t5, t1, t5);
  f.sd(zero, 0, t5);
  f.addi(t2, t2, 1);
  f.blt(t2, t3, zloop);
  f.j(after);
  f.bind(fail);
  emit_exit(f, kExitRevealMismatch);
  f.bind(after);
}

void add_init(Program& p, u64 region_len) {
  Function& f = p.add_function("__vault_init");
  f.instrumentable = false;
  f.mv(s0, ra);  // the latch call below clobbers ra

  // Vault region, then the owner's reveal page.
  f.li(a0, 0);
  f.li(a1, static_cast<i64>(region_len));
  f.li(a2, 3);
  rt::syscall(f, os::sys::kMmap);
  f.la(t0, "__vault_base");
  f.sd(a0, 0, t0);
  f.li(a0, 0);
  f.li(a1, static_cast<i64>(kPageSize));
  f.li(a2, 3);
  rt::syscall(f, os::sys::kMmap);
  f.la(t0, "__reveal_base");
  f.sd(a0, 0, t0);

  // Superblock: 10 words copied from rodata before the region is tagged.
  f.la(t0, "__vault_super");
  f.la(t1, "__vault_base");
  f.ld(t1, 0, t1);
  for (i64 i = 0; i < 10; ++i) {
    f.ld(t2, 8 * i, t0);
    f.sd(t2, 8 * i, t1);
  }

  // Key numbering is part of the protocol: owner = 1, vault = 2.
  f.li(a0, 0);
  f.li(a1, static_cast<i64>(os::pkeyperm::kRw));
  rt::syscall(f, os::sys::kPkeyAlloc);
  {
    const Label ok = f.new_label();
    f.li(t1, kOwnerPkey);
    f.beq(a0, t1, ok);
    emit_exit(f, kExitBadPkey);
    f.bind(ok);
  }
  f.li(a0, 0);
  f.li(a1, static_cast<i64>(os::pkeyperm::kWriteOnly));
  rt::syscall(f, os::sys::kPkeyAlloc);
  {
    const Label ok = f.new_label();
    f.li(t1, kVaultPkey);
    f.beq(a0, t1, ok);
    emit_exit(f, kExitBadPkey);
    f.bind(ok);
  }

  // Tag the reveal page with the owner key, the vault with the vault key.
  f.la(a0, "__reveal_base");
  f.ld(a0, 0, a0);
  f.li(a1, static_cast<i64>(kPageSize));
  f.li(a2, 3);
  f.li(a3, kOwnerPkey);
  rt::syscall(f, os::sys::kPkeyMprotect);
  {
    const Label ok = f.new_label();
    f.beqz(a0, ok);
    emit_exit(f, kExitBadPkey);
    f.bind(ok);
  }
  f.la(a0, "__vault_base");
  f.ld(a0, 0, a0);
  f.li(a1, static_cast<i64>(region_len));
  f.li(a2, 3);
  f.li(a3, kVaultPkey);
  rt::syscall(f, os::sys::kPkeyMprotect);
  {
    const Label ok = f.new_label();
    f.beqz(a0, ok);
    emit_exit(f, kExitBadPkey);
    f.bind(ok);
  }

  // Seal the vault domain and its pages, then perm-seal the key so the
  // write-only view is irrevocable (the latch stages the empty gate range).
  f.li(a0, kVaultPkey);
  f.li(a1, 1);
  f.li(a2, 1);
  rt::syscall(f, os::sys::kPkeySeal);
  {
    const Label ok = f.new_label();
    f.beqz(a0, ok);
    emit_exit(f, kExitSealFailed);
    f.bind(ok);
  }
  f.call("__vault_latch");
  f.li(a0, kVaultPkey);
  rt::syscall(f, os::sys::kPkeyPermSeal);
  {
    const Label ok = f.new_label();
    f.beqz(a0, ok);
    emit_exit(f, kExitSealFailed);
    f.bind(ok);
  }
  f.mv(ra, s0);
  f.ret();

  // The vault key's permissible WRPKR range: the empty span between the
  // two markers — nothing may ever rewrite the vault key's PKR field.
  Function& latch = p.add_function("__vault_latch");
  latch.instrumentable = false;
  latch.seal_start(0);
  latch.seal_end(0);
  latch.ret();
}

}  // namespace

u64 op_key(u64 seed, u64 id, u64 seq) {
  return mix64(mix64(seed ^ (id * 0x9E37u)) ^ seq);
}

std::vector<u8> payload_bytes(u64 seed, u64 id, u64 seq, u64 len) {
  std::vector<u8> out(len, 0);
  const u64 key = op_key(seed, id, seq);
  for (u64 j = 0; j < len / 8; ++j) {
    store_u64(&out[j * 8], mix64(key + j));
  }
  return out;
}

std::vector<VaultOp> plan_ops(const VaultSpec& spec) {
  std::vector<VaultOp> ops;
  if (spec.seals == 0) return ops;
  u64 r = 0;
  for (u32 k = 0; k < spec.seals; ++k) {
    ops.push_back({OpType::kSeal, k + u64{1}, k, spec.slot_size, 1, 2 * r});
    ++r;
  }
  for (u32 j = 0; j < spec.reseals; ++j) {
    const u64 id = (j % spec.seals) + 1;
    ops.push_back({OpType::kReseal, id, spec.seals + j, spec.slot_size,
                   2 + j / spec.seals, 2 * r});
    ++r;
  }
  // Newest committed version per id after the seal/reseal prefix — what
  // each unseal must observe.
  std::map<u64, VaultOp> newest;
  for (const VaultOp& op : ops) {
    if (op.type == OpType::kUnseal) continue;
    auto it = newest.find(op.id);
    if (it == newest.end() || op.seq > it->second.seq) newest[op.id] = op;
  }
  for (u32 u = 0; u < spec.unseals; ++u) {
    const VaultOp& v = newest.at((u % spec.seals) + 1);
    ops.push_back({OpType::kUnseal, v.id, v.slot, v.len, v.seq, 0});
  }
  return ops;
}

Geometry geometry_for(const VaultSpec& spec) {
  Geometry g;
  g.vault_pkey = kVaultPkey;
  g.owner_pkey = kOwnerPkey;
  g.journal_off = kSuperblockSize;
  g.journal_cap =
      std::max<u64>(2, 2 * (u64{spec.seals} + u64{spec.reseals}));
  g.data_off = g.journal_off + g.journal_cap * kRecordSize;
  g.n_slots = std::max<u64>(
      {spec.n_slots, u64{spec.seals} + u64{spec.reseals}, u64{1}});
  g.slot_size = std::max<u64>(8, spec.slot_size - spec.slot_size % 8);
  return g;
}

BuiltVault build_vault(const VaultSpec& spec) {
  BuiltVault built;
  built.geo = geometry_for(spec);
  built.ops = plan_ops(spec);
  const Geometry& geo = built.geo;
  const u64 region_len =
      (geo.total_len() + kPageSize - 1) / kPageSize * kPageSize;

  Program p;
  rt::add_crt0(p, "main");
  Function& f = p.add_function("main");
  f.instrumentable = false;
  f.call("__vault_init");
  for (const VaultOp& op : built.ops) {
    if (op.type == OpType::kUnseal) {
      emit_unseal_op(f, op, spec.seed);
    } else {
      emit_seal_op(f, geo, op, spec.seed);
    }
  }
  f.li(a0, static_cast<i64>(built.ops.size()));
  rt::syscall(f, os::sys::kReport);
  emit_exit(f, 0);
  add_init(p, region_len);

  p.add_zero("__vault_base", 8);
  p.add_zero("__reveal_base", 8);
  p.add_rodata("__vault_super", superblock_bytes(geo));
  u64 r = 0;
  for (const VaultOp& op : built.ops) {
    if (op.type == OpType::kUnseal) continue;
    const std::vector<u8> payload =
        payload_bytes(spec.seed, op.id, op.seq, op.len);
    built.payloads.push_back(payload);
    p.add_rodata(
        intent_name(r),
        record_bytes(op.type == OpType::kSeal ? kRecordIntentSeal
                                              : kRecordIntentReseal,
                     op.id, op.slot, op.len, op.seq,
                     checksum64(payload.data(), payload.size())));
    ++r;
  }

  // Final-state oracle.
  built.expected.superblock_ok = true;
  for (const VaultOp& op : built.ops) {
    if (op.type == OpType::kUnseal) continue;
    ++built.expected.commits_seen;
    built.expected.records_seen += 2;
    auto it = built.expected.live.find(op.id);
    if (it == built.expected.live.end() || op.seq >= it->second.seq) {
      const std::vector<u8> payload =
          payload_bytes(spec.seed, op.id, op.seq, op.len);
      built.expected.live[op.id] =
          Bundle{op.slot, op.len, op.seq,
                 checksum64(payload.data(), payload.size())};
    }
  }
  built.expected_ledger = ledger_string(built.expected);

  built.image = p.link();
  return built;
}

}  // namespace sealpk::vault
