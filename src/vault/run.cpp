#include "vault/run.h"

#include <vector>

#include "sim/machine.h"

namespace sealpk::vault {

VaultRunResult run_vault_once(const VaultSpec& spec, bool trace) {
  const BuiltVault built = build_vault(spec);
  sim::MachineConfig mc;
  mc.trace.enabled = trace;
  sim::Machine machine(mc);
  VaultRunResult r;
  const int pid = machine.load(built.image);
  if (pid < 0) return r;
  r.completed = machine.run(400'000'000ULL).completed;
  r.exit_code = machine.exit_code(pid);
  const os::Process& proc = machine.kernel().process(pid);
  const auto loc = find_vault(*proc.aspace);
  r.ledger = "(no vault)\n";
  if (loc.has_value()) {
    std::vector<u8> region(loc->geo.total_len());
    if (proc.aspace->copy_in(loc->base, region.data(), region.size())) {
      r.ledger = ledger_string(replay(region.data(), region.size()));
    }
  }
  r.ledger_ok = r.ledger == built.expected_ledger;
  r.instructions = machine.hart().instret();
  r.stats = machine.kernel().vault_stats();
  if (machine.recorder() != nullptr) r.trace = machine.recorder()->trace();
  return r;
}

}  // namespace sealpk::vault
