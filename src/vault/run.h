// One clean vault run as a reusable primitive (extracted from the
// sealpk-vault CLI so the SLO span bench and tests can drive it too):
// build the owner/vault guest for a spec, run it on a private machine,
// cold-replay the vault region into a ledger and compare against the
// build-time oracle. Optionally traced — vault intent/commit/unseal
// events feed the span layer (DESIGN.md §16) and tracing never perturbs
// the run.
#pragma once

#include <string>

#include "obs/recorder.h"
#include "os/kernel.h"
#include "vault/program.h"

namespace sealpk::vault {

struct VaultRunResult {
  bool completed = false;
  i64 exit_code = -1;
  std::string ledger;     // replayed from the vault region ("(no vault)\n"
                          // when the region was never mapped)
  bool ledger_ok = false; // ledger == the build-time expected ledger
  u64 instructions = 0;
  os::VaultStats stats;
  obs::Trace trace;       // populated when `trace` was requested

  bool ok() const { return completed && exit_code == 0 && ledger_ok; }
};

VaultRunResult run_vault_once(const VaultSpec& spec, bool trace = false);

}  // namespace sealpk::vault
