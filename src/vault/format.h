// Sealed-storage vault format (DESIGN.md §14).
//
// A vault is a contiguous guest-memory region tagged with a write-only,
// perm-sealed pkey. Layout, all offsets relative to the vault base:
//
//   [0, 80)                        superblock (10 u64 words, FNV-1a sealed)
//   [journal_off, +journal_cap*64) write-ahead journal, 64-byte records
//   [data_off, +n_slots*slot_size) payload slots
//
// The journal is record-PAIRED: operation r writes its intent record at
// slot 2r (guest-side, word-by-word, so a crash can tear it) and the
// kernel writes the matching commit record at slot 2r+1 (host-side, in
// one atomic trap). Every record carries an FNV-1a 64 checksum over its
// first 56 bytes, and each intent/commit carries the FNV of the payload
// it covers — so cold replay can always distinguish "fully present",
// "torn" and "absent" without trusting anything outside the region.
//
// Everything here is header-only on purpose: the kernel (src/os), the
// fault injector (src/fault) and the sweep harness (src/vault) all parse
// the same bytes, and none of them should grow a link-time edge for it.
#pragma once

#include <cstring>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "common/bits.h"
#include "common/checksum.h"
#include "os/addr_space.h"

namespace sealpk::vault {

// "SPKVAULT" / "SPKVJRNL" little-endian.
inline constexpr u64 kVaultMagic = 0x544C5541564B5053ULL;
inline constexpr u64 kRecordMagic = 0x4C4E524A564B5053ULL;
inline constexpr u64 kFormatVersion = 1;

inline constexpr u64 kSuperblockSize = 80;  // 10 u64 words
inline constexpr u64 kRecordSize = 64;      // 8 u64 words

// Record types. Intents are guest-written (torn writes possible); commits
// are kernel-written inside one trap and are the durability points.
inline constexpr u64 kRecordIntentSeal = 1;
inline constexpr u64 kRecordIntentReseal = 2;
inline constexpr u64 kRecordCommit = 3;

inline u64 load_u64(const u8* p) {
  u64 v = 0;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

inline void store_u64(u8* p, u64 v) { std::memcpy(p, &v, sizeof(v)); }

// Deterministic payload generator shared by the host-side oracle and the
// guest emitter (splitmix64 finalizer — same shape src/serve uses).
inline u64 mix64(u64 x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

// ---------------------------------------------------------------------------
// Superblock.
// ---------------------------------------------------------------------------

struct Geometry {
  u64 version = kFormatVersion;
  u64 vault_pkey = 0;   // write-only + perm-sealed domain tagging the region
  u64 owner_pkey = 0;   // domain whose kRw holders may seal/unseal
  u64 journal_off = kSuperblockSize;
  u64 journal_cap = 0;  // record slots (always even: intent/commit pairs)
  u64 data_off = 0;
  u64 n_slots = 0;
  u64 slot_size = 0;    // bytes, multiple of 8

  u64 total_len() const { return data_off + n_slots * slot_size; }
  u64 record_off(u64 index) const { return journal_off + index * kRecordSize; }
  u64 slot_off(u64 slot) const { return data_off + slot * slot_size; }
};

inline std::vector<u8> superblock_bytes(const Geometry& g) {
  std::vector<u8> b(kSuperblockSize, 0);
  store_u64(&b[0], kVaultMagic);
  store_u64(&b[8], g.version);
  store_u64(&b[16], g.vault_pkey);
  store_u64(&b[24], g.owner_pkey);
  store_u64(&b[32], g.journal_off);
  store_u64(&b[40], g.journal_cap);
  store_u64(&b[48], g.data_off);
  store_u64(&b[56], g.n_slots);
  store_u64(&b[64], g.slot_size);
  store_u64(&b[72], checksum64(b.data(), 72));
  return b;
}

inline std::optional<Geometry> parse_superblock(const u8* p, u64 len) {
  if (len < kSuperblockSize) return std::nullopt;
  if (load_u64(p) != kVaultMagic) return std::nullopt;
  if (load_u64(p + 72) != checksum64(p, 72)) return std::nullopt;
  Geometry g;
  g.version = load_u64(p + 8);
  g.vault_pkey = load_u64(p + 16);
  g.owner_pkey = load_u64(p + 24);
  g.journal_off = load_u64(p + 32);
  g.journal_cap = load_u64(p + 40);
  g.data_off = load_u64(p + 48);
  g.n_slots = load_u64(p + 56);
  g.slot_size = load_u64(p + 64);
  if (g.version != kFormatVersion) return std::nullopt;
  if (g.vault_pkey == 0 || g.vault_pkey == g.owner_pkey) return std::nullopt;
  if (g.journal_off < kSuperblockSize) return std::nullopt;
  if (g.journal_cap == 0 || (g.journal_cap % 2) != 0) return std::nullopt;
  if (g.data_off < g.journal_off + g.journal_cap * kRecordSize) {
    return std::nullopt;
  }
  if (g.n_slots == 0 || g.slot_size == 0 || (g.slot_size % 8) != 0) {
    return std::nullopt;
  }
  return g;
}

// ---------------------------------------------------------------------------
// Journal records.
// ---------------------------------------------------------------------------

struct Record {
  u64 magic = 0;
  u64 type = 0;
  u64 id = 0;
  u64 slot = 0;
  u64 len = 0;
  u64 seq = 0;
  u64 payload_fnv = 0;
  u64 record_fnv = 0;
  bool present = false;  // any nonzero byte in the 64-byte slot
  bool valid = false;    // magic + record checksum + known type
};

inline std::vector<u8> record_bytes(u64 type, u64 id, u64 slot, u64 len,
                                    u64 seq, u64 payload_fnv) {
  std::vector<u8> b(kRecordSize, 0);
  store_u64(&b[0], kRecordMagic);
  store_u64(&b[8], type);
  store_u64(&b[16], id);
  store_u64(&b[24], slot);
  store_u64(&b[32], len);
  store_u64(&b[40], seq);
  store_u64(&b[48], payload_fnv);
  store_u64(&b[56], checksum64(b.data(), 56));
  return b;
}

inline Record parse_record(const u8* p) {
  Record r;
  for (u64 i = 0; i < kRecordSize; ++i) r.present |= p[i] != 0;
  if (!r.present) return r;
  r.magic = load_u64(p);
  r.type = load_u64(p + 8);
  r.id = load_u64(p + 16);
  r.slot = load_u64(p + 24);
  r.len = load_u64(p + 32);
  r.seq = load_u64(p + 40);
  r.payload_fnv = load_u64(p + 48);
  r.record_fnv = load_u64(p + 56);
  r.valid = r.magic == kRecordMagic && r.record_fnv == checksum64(p, 56) &&
            (r.type == kRecordIntentSeal || r.type == kRecordIntentReseal ||
             r.type == kRecordCommit);
  return r;
}

// ---------------------------------------------------------------------------
// Cold replay.
// ---------------------------------------------------------------------------

struct Bundle {
  u64 slot = 0;
  u64 len = 0;
  u64 seq = 0;
  u64 payload_fnv = 0;

  bool operator==(const Bundle&) const = default;
};

// The recovered view of a vault region: only commit records admit a bundle
// into `live`, and a live bundle whose payload bytes fail their checksum is
// demoted to `payload_mismatch` (detected, never served) rather than kept.
struct Ledger {
  bool superblock_ok = false;
  std::map<u64, Bundle> live;  // bundle id -> newest committed version
  u64 records_seen = 0;        // non-empty journal record slots
  u64 commits_seen = 0;        // valid commit records
  u64 torn_or_corrupt = 0;     // non-empty records failing magic/checksum
  u64 payload_mismatch = 0;    // committed payloads failing their FNV
};

inline Ledger replay(const u8* region, u64 len) {
  Ledger ledger;
  const std::optional<Geometry> g = parse_superblock(region, len);
  if (!g || g->total_len() > len) return ledger;
  ledger.superblock_ok = true;
  for (u64 i = 0; i < g->journal_cap; ++i) {
    const Record r = parse_record(region + g->record_off(i));
    if (!r.present) continue;
    ++ledger.records_seen;
    if (!r.valid) {
      ++ledger.torn_or_corrupt;
      continue;
    }
    if (r.type != kRecordCommit) continue;  // intents alone commit nothing
    if (r.slot >= g->n_slots || r.len > g->slot_size || (r.len % 8) != 0) {
      ++ledger.torn_or_corrupt;
      continue;
    }
    ++ledger.commits_seen;
    auto it = ledger.live.find(r.id);
    if (it == ledger.live.end() || r.seq >= it->second.seq) {
      ledger.live[r.id] = Bundle{r.slot, r.len, r.seq, r.payload_fnv};
    }
  }
  for (auto it = ledger.live.begin(); it != ledger.live.end();) {
    const Bundle& b = it->second;
    if (checksum64(region + g->slot_off(b.slot), b.len) != b.payload_fnv) {
      ++ledger.payload_mismatch;
      it = ledger.live.erase(it);
    } else {
      ++it;
    }
  }
  return ledger;
}

// Canonical text form — the byte-identity oracle across thread counts.
inline std::string ledger_string(const Ledger& ledger) {
  std::ostringstream os;
  os << "vault ledger sb=" << (ledger.superblock_ok ? 1 : 0) << "\n";
  for (const auto& [id, b] : ledger.live) {
    os << "  bundle id=" << id << " seq=" << b.seq << " slot=" << b.slot
       << " len=" << b.len << " fnv=" << std::hex << b.payload_fnv
       << std::dec << "\n";
  }
  os << "  summary live=" << ledger.live.size()
     << " records=" << ledger.records_seen
     << " commits=" << ledger.commits_seen
     << " torn=" << ledger.torn_or_corrupt
     << " mismatch=" << ledger.payload_mismatch << "\n";
  return os.str();
}

// ---------------------------------------------------------------------------
// Locating a vault inside a guest address space.
// ---------------------------------------------------------------------------

struct VaultLocation {
  u64 base = 0;
  u64 len = 0;  // VMA extent, >= geo.total_len()
  Geometry geo;
};

// Scans the VMAs of `aspace` for a region whose first bytes parse as a
// vault superblock claiming the VMA's own pkey. Used by the kernel (to
// resolve syscall arguments defensively), the fault injector (to aim
// journal corruption) and the sweep harness (to dump the region).
inline std::optional<VaultLocation> find_vault(const os::AddressSpace& aspace) {
  for (const auto& [start, vma] : aspace.vmas()) {
    if (vma.pkey == 0) continue;
    u8 sb[kSuperblockSize];
    if (!aspace.copy_in(start, sb, kSuperblockSize)) continue;
    const std::optional<Geometry> g = parse_superblock(sb, kSuperblockSize);
    if (!g || g->vault_pkey != vma.pkey) continue;
    if (g->total_len() > vma.end - vma.start) continue;
    return VaultLocation{start, vma.end - vma.start, *g};
  }
  return std::nullopt;
}

}  // namespace sealpk::vault
