#include "vault/sweep.h"

#include <algorithm>
#include <optional>
#include <ostream>
#include <set>

#include "common/json.h"
#include "fleet/engine.h"
#include "os/syscall_abi.h"
#include "sim/machine.h"
#include "snapshot/snapshot.h"

namespace sealpk::vault {

namespace {

// Dense-window width after each guest kVaultIntent mark: wide enough to
// land on every one of the 16 ld/sd word steps of the intent-record copy
// plus the first payload stores.
constexpr u64 kIntentWindow = 96;
constexpr u64 kRunBudget = 400'000'000ULL;
constexpr u64 kMaxScanVma = 8u << 20;  // skip pathological giant mappings

std::vector<u8> dump_region(const os::AddressSpace& aspace,
                            const VaultLocation& loc) {
  std::vector<u8> region(loc.geo.total_len());
  if (!aspace.copy_in(loc.base, region.data(), region.size())) {
    region.clear();
  }
  return region;
}

// Invariant (a): a recoverable bundle must be byte-exact one of the
// planned payload versions. replay() already demoted checksum-bad
// payloads, so matching the planned (id, seq) -> slot/len/fnv tuple pins
// the content to the build-time oracle.
void check_integrity(const BuiltVault& built, const VaultSpec& spec,
                     const Ledger& ledger,
                     const std::function<void(std::string)>& fail) {
  for (const auto& [id, b] : ledger.live) {
    const VaultOp* match = nullptr;
    for (const VaultOp& op : built.ops) {
      if (op.type == OpType::kUnseal) continue;
      if (op.id == id && op.seq == b.seq) {
        match = &op;
        break;
      }
    }
    if (match == nullptr || match->slot != b.slot || match->len != b.len) {
      fail("unplanned live bundle id=" + std::to_string(id) +
           " seq=" + std::to_string(b.seq));
      continue;
    }
    const std::vector<u8> expect =
        payload_bytes(spec.seed, id, b.seq, b.len);
    if (checksum64(expect.data(), expect.size()) != b.payload_fnv) {
      fail("foreign payload content id=" + std::to_string(id));
    }
  }
}

// Invariant (b): every commit the kernel acknowledged (its kVaultCommit
// mark, stamped inside the committing trap) is still recoverable at that
// or a newer sequence number.
void check_durability(const os::Kernel& kernel, const Ledger& ledger,
                      const std::function<void(std::string)>& fail) {
  for (const os::MarkRecord& mr : kernel.marks()) {
    if (mr.kind == os::mark::kVaultDenied) {
      fail("unexpected ownership denial id=" + std::to_string(mr.arg0));
      continue;
    }
    if (mr.kind != os::mark::kVaultCommit) continue;
    const auto it = ledger.live.find(mr.arg0);
    if (it == ledger.live.end() || it->second.seq < mr.arg1) {
      fail("committed bundle lost id=" + std::to_string(mr.arg0) +
           " seq=" + std::to_string(mr.arg1));
    }
  }
}

// Invariant (c): no committed secret prefix readable outside the vault
// region and the owner's reveal page (registers are not memory; the guest
// never spills payload words anywhere else).
void check_confidentiality(const BuiltVault& built,
                           const os::AddressSpace& aspace,
                           const std::optional<VaultLocation>& loc,
                           const std::function<void(std::string)>& fail) {
  std::vector<std::vector<u8>> needles;
  needles.reserve(built.payloads.size());
  for (const std::vector<u8>& payload : built.payloads) {
    const u64 n = std::min<u64>(16, payload.size());
    if (n >= 8) {
      needles.emplace_back(payload.begin(),
                           payload.begin() + static_cast<i64>(n));
    }
  }
  for (const auto& [start, vma] : aspace.vmas()) {
    if (loc.has_value() && start == loc->base) continue;
    if (vma.pkey == kOwnerPkey) continue;
    const u64 len = vma.end - vma.start;
    if (len > kMaxScanVma) continue;
    std::vector<u8> buf(len);
    if (!aspace.copy_in(start, buf.data(), len)) continue;
    for (const std::vector<u8>& needle : needles) {
      const auto it =
          std::search(buf.begin(), buf.end(), needle.begin(), needle.end());
      if (it != buf.end()) {
        fail("secret bytes outside vault at vaddr=" +
             std::to_string(start + static_cast<u64>(it - buf.begin())));
        return;
      }
    }
  }
}

PointVerdict check_point(const BuiltVault& built, const VaultSpec& spec,
                         const sim::MachineConfig& mc, u64 crash_at,
                         bool do_resume) {
  PointVerdict v;
  v.instret = crash_at;
  const auto fail = [&v](std::string why) {
    if (v.ok) {
      v.ok = false;
      v.failure = std::move(why);
    }
  };
  try {
    sim::Machine m(mc);
    const int pid = m.load(built.image);
    if (pid < 0) {
      fail("load refused");
      return v;
    }
    m.run(crash_at);

    const os::Process& proc = m.kernel().process(pid);
    const std::optional<VaultLocation> loc = find_vault(*proc.aspace);
    Ledger ledger;
    if (loc.has_value()) {
      const std::vector<u8> region = dump_region(*proc.aspace, *loc);
      if (region.empty()) {
        fail("vault region unreadable");
      } else {
        ledger = replay(region.data(), region.size());
      }
    }
    v.live = ledger.live.size();
    v.commits = ledger.commits_seen;
    v.torn = ledger.torn_or_corrupt;

    check_integrity(built, spec, ledger, fail);
    check_durability(m.kernel(), ledger, fail);
    check_confidentiality(built, *proc.aspace, loc, fail);

    // Snapshot-rollback recovery: restore the last known-good checkpoint
    // and re-run to completion — the recovered machine must land on the
    // exact expected final ledger.
    if (do_resume && m.has_checkpoint()) {
      v.resumed = true;
      sim::Machine resumed(snapshot::config_from(m.checkpoint_blob()));
      snapshot::restore(resumed, m.checkpoint_blob());
      if (!resumed.run(kRunBudget).completed) {
        fail("resume did not complete");
      } else if (resumed.exit_code(pid) != 0) {
        fail("resume exit=" + std::to_string(resumed.exit_code(pid)));
      } else {
        const os::Process& rp = resumed.kernel().process(pid);
        const std::optional<VaultLocation> rloc = find_vault(*rp.aspace);
        std::string led = "(no vault)";
        if (rloc.has_value()) {
          const std::vector<u8> region = dump_region(*rp.aspace, *rloc);
          if (!region.empty()) {
            led = ledger_string(replay(region.data(), region.size()));
          }
        }
        if (led != built.expected_ledger) fail("resume ledger diverged");
      }
    }
  } catch (const std::exception& e) {
    fail(std::string("host exception: ") + e.what());
  }
  return v;
}

ChaosVerdict run_chaos(const BuiltVault& built, const VaultSpec& spec,
                       sim::MachineConfig mc, u64 seed, double rate,
                       u64 max_faults) {
  ChaosVerdict cv;
  cv.seed = seed;
  const auto fail = [&cv](std::string why) {
    if (cv.ok) {
      cv.ok = false;
      cv.failure = std::move(why);
    }
  };
  mc.fault_plan.enabled = true;
  mc.fault_plan.seed = seed;
  mc.fault_plan.kinds = fault::kVaultFaultKinds;
  mc.fault_plan.rate = rate;
  mc.fault_plan.max_faults = max_faults;
  try {
    sim::Machine m(mc);
    const int pid = m.load(built.image);
    if (pid < 0) {
      fail("load refused");
      return cv;
    }
    if (!m.run(kRunBudget).completed) {
      fail("chaos run did not complete");
      return cv;
    }
    cv.exit_code = m.exit_code(pid);
    cv.injected = m.injector()->total_injected();

    const os::Process& proc = m.kernel().process(pid);
    const std::optional<VaultLocation> loc = find_vault(*proc.aspace);
    Ledger ledger;
    std::string led = "(no vault)";
    if (loc.has_value()) {
      const std::vector<u8> region = dump_region(*proc.aspace, *loc);
      if (!region.empty()) {
        ledger = replay(region.data(), region.size());
        led = ledger_string(ledger);
      }
    }
    cv.detected = m.kernel().vault_stats().corruption_detected +
                  ledger.torn_or_corrupt + ledger.payload_mismatch;

    // Never serve invalid data, chaos or not.
    check_integrity(built, spec, ledger, fail);

    const bool guest_refused = cv.exit_code == kExitSealFailed ||
                               cv.exit_code == kExitUnsealFailed ||
                               cv.exit_code == kExitRevealMismatch;
    if (cv.injected == 0) {
      if (cv.exit_code != 0 || led != built.expected_ledger) {
        fail("fault-free chaos run diverged");
      }
    } else {
      // Invariants weaken exactly to detection: a flip may lose data, but
      // a divergent outcome with no detection anywhere is a silent lie.
      if (led != built.expected_ledger && cv.detected == 0 &&
          !guest_refused) {
        fail("silent ledger divergence under chaos");
      }
      if (cv.exit_code != 0 && !guest_refused) {
        fail("unexpected exit=" + std::to_string(cv.exit_code));
      }
    }
  } catch (const std::exception& e) {
    fail(std::string("host exception: ") + e.what());
  }
  return cv;
}

std::string compose_canonical(const SweepResult& r) {
  std::string out = "vault sweep T=" + std::to_string(r.total_instructions) +
                    " points=" + std::to_string(r.points) +
                    " boundary=" + std::to_string(r.boundary_points) +
                    " resume=" + std::to_string(r.resume_points) +
                    " failures=" + std::to_string(r.failures) +
                    " chaos=" + std::to_string(r.chaos.size()) + "\n";
  if (!r.learning_failure.empty()) {
    out += "  learning FAIL " + r.learning_failure + "\n";
  }
  for (const PointVerdict& v : r.verdicts) {
    if (v.ok) continue;
    out += "  point " + std::to_string(v.instret) + " FAIL " + v.failure +
           "\n";
  }
  for (const ChaosVerdict& cv : r.chaos) {
    out += "  chaos seed=" + std::to_string(cv.seed) +
           " exit=" + std::to_string(cv.exit_code) +
           " injected=" + std::to_string(cv.injected) +
           " detected=" + std::to_string(cv.detected) +
           (cv.ok ? " ok" : " FAIL " + cv.failure) + "\n";
  }
  out += r.final_ledger;
  out += r.ok ? "verdict ok\n" : "verdict FAIL\n";
  return out;
}

}  // namespace

SweepResult run_sweep(const SweepConfig& cfg) {
  SweepResult r;
  const BuiltVault built = build_vault(cfg.spec);
  r.final_ledger = built.expected_ledger;

  sim::MachineConfig mc;
  mc.checkpoint_interval = cfg.checkpoint_interval;

  // Learning run: clean completion, expected ledger, and the instret map
  // of every vault mark (the dense-window anchors).
  sim::Machine learn(mc);
  const int pid = learn.load(built.image);
  if (pid < 0) {
    r.learning_failure = "load refused";
  } else if (!learn.run(kRunBudget).completed) {
    r.learning_failure = "learning run did not complete";
  } else if (learn.exit_code(pid) != 0) {
    r.learning_failure =
        "learning run exit=" + std::to_string(learn.exit_code(pid));
  } else {
    const os::Process& proc = learn.kernel().process(pid);
    const std::optional<VaultLocation> loc = find_vault(*proc.aspace);
    if (!loc.has_value()) {
      r.learning_failure = "no vault after clean run";
    } else {
      const std::vector<u8> region = dump_region(*proc.aspace, *loc);
      const std::string led =
          region.empty()
              ? std::string("(unreadable)")
              : ledger_string(replay(region.data(), region.size()));
      if (led != built.expected_ledger) {
        r.learning_failure = "learning ledger mismatch:\n" + led;
      }
    }
  }
  r.total_instructions = learn.hart().instret();
  if (!r.learning_failure.empty()) {
    r.canonical = compose_canonical(r);
    return r;
  }

  // Crash-point sampling: dense windows around every journal-record write
  // and kernel commit/unseal trap, plus a uniform stride, plus a density
  // floor — deduped and sorted so verdict slots are index-deterministic.
  const u64 total = r.total_instructions;
  std::set<u64> pts;
  std::set<u64> boundary;
  for (const os::MarkRecord& mr : learn.kernel().marks()) {
    if (mr.kind == os::mark::kVaultIntent) {
      for (u64 d = 0; d < kIntentWindow; ++d) {
        const u64 t = mr.instret + d;
        if (t >= 1 && t < total) {
          pts.insert(t);
          boundary.insert(t);
        }
      }
    } else if (mr.kind == os::mark::kVaultCommit ||
               mr.kind == os::mark::kVaultUnseal) {
      for (i64 d = -2; d <= 2; ++d) {
        const i64 t = static_cast<i64>(mr.instret) + d;
        if (t >= 1 && static_cast<u64>(t) < total) {
          pts.insert(static_cast<u64>(t));
          boundary.insert(static_cast<u64>(t));
        }
      }
    }
  }
  const u64 stride =
      std::max<u64>(1, total / std::max<u64>(1, cfg.stride_points));
  for (u64 t = 1; t < total; t += stride) pts.insert(t);
  for (u64 t = 1; t < total && pts.size() < cfg.min_points; ++t) {
    pts.insert(t);
  }

  const std::vector<u64> points(pts.begin(), pts.end());
  r.points = points.size();
  for (const u64 t : points) r.boundary_points += boundary.count(t);

  r.verdicts.resize(points.size());
  fleet::run_indexed(points.size(), cfg.threads, [&](size_t i, unsigned) {
    const bool resume =
        cfg.rollback_every != 0 && (i % cfg.rollback_every) == 0;
    r.verdicts[i] =
        check_point(built, cfg.spec, mc, points[i], resume);
  });
  for (const PointVerdict& v : r.verdicts) {
    if (!v.ok) ++r.failures;
    if (v.resumed) ++r.resume_points;
  }

  if (cfg.chaos) {
    r.chaos.resize(cfg.chaos_runs);
    fleet::run_indexed(cfg.chaos_runs, cfg.threads, [&](size_t i, unsigned) {
      r.chaos[i] = run_chaos(built, cfg.spec, mc, cfg.chaos_seed + i,
                             cfg.chaos_rate, cfg.chaos_max_faults);
    });
  }

  r.ok = r.failures == 0;
  for (const ChaosVerdict& cv : r.chaos) r.ok = r.ok && cv.ok;
  r.canonical = compose_canonical(r);
  return r;
}

void write_sweep_json(std::ostream& os, const SweepConfig& cfg,
                      const SweepResult& r) {
  os << "{\n";
  os << "  \"ok\": " << (r.ok ? "true" : "false") << ",\n";
  os << "  \"total_instructions\": " << r.total_instructions << ",\n";
  os << "  \"points\": " << r.points << ",\n";
  os << "  \"boundary_points\": " << r.boundary_points << ",\n";
  os << "  \"resume_points\": " << r.resume_points << ",\n";
  os << "  \"failures\": " << r.failures << ",\n";
  os << "  \"learning_failure\": \"" << json_escape(r.learning_failure)
     << "\",\n";
  os << "  \"config\": {\"slots\": " << cfg.spec.n_slots
     << ", \"slot_size\": " << cfg.spec.slot_size
     << ", \"seals\": " << cfg.spec.seals
     << ", \"reseals\": " << cfg.spec.reseals
     << ", \"unseals\": " << cfg.spec.unseals
     << ", \"seed\": " << cfg.spec.seed
     << ", \"threads\": " << cfg.threads
     << ", \"chaos\": " << (cfg.chaos ? "true" : "false") << "},\n";
  os << "  \"failures_detail\": [";
  bool first = true;
  for (const PointVerdict& v : r.verdicts) {
    if (v.ok) continue;
    os << (first ? "" : ", ") << "{\"instret\": " << v.instret
       << ", \"failure\": \"" << json_escape(v.failure) << "\"}";
    first = false;
  }
  os << "],\n";
  os << "  \"chaos_runs\": [";
  for (size_t i = 0; i < r.chaos.size(); ++i) {
    const ChaosVerdict& cv = r.chaos[i];
    os << (i == 0 ? "" : ", ") << "{\"seed\": " << cv.seed
       << ", \"exit\": " << cv.exit_code << ", \"injected\": " << cv.injected
       << ", \"detected\": " << cv.detected
       << ", \"ok\": " << (cv.ok ? "true" : "false") << ", \"failure\": \""
       << json_escape(cv.failure) << "\"}";
  }
  os << "],\n";
  os << "  \"ledger\": \"" << json_escape(r.final_ledger) << "\"\n";
  os << "}\n";
}

}  // namespace sealpk::vault
