#include "fleet/job.h"

#include <sstream>

namespace sealpk::fleet {

const char* job_kind_name(JobKind kind) {
  switch (kind) {
    case JobKind::kRun: return "run";
    case JobKind::kChaosDiff: return "chaos-diff";
  }
  return "?";
}

namespace {

const char* resolution_name(fault::FaultResolution r) {
  switch (r) {
    case fault::FaultResolution::kOutstanding: return "outstanding";
    case fault::FaultResolution::kRecovered: return "recovered";
    case fault::FaultResolution::kProcessKilled: return "process-killed";
    case fault::FaultResolution::kMaskedBenign: return "masked-benign";
  }
  return "unknown";
}

void json_string(std::ostream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

}  // namespace

std::string JobSpec::label() const {
  std::ostringstream os;
  os << wl::suite_name(workload->suite) << "/" << workload->name;
  if (ss != passes::ShadowStackKind::kNone) {
    os << " [" << passes::shadow_stack_kind_name(ss)
       << (perm_seal ? ", perm-sealed]" : "]");
  }
  return os.str();
}

std::string canonical_record(const JobResult& r) {
  std::ostringstream os;
  os << "{\"id\": " << r.id << ", \"label\": ";
  json_string(os, r.label);
  os << ", \"kind\": \"" << job_kind_name(r.kind) << "\", \"ok\": "
     << (r.ok ? "true" : "false") << ", \"verdict\": ";
  json_string(os, r.verdict);
  os << ", \"ran\": " << (r.ran ? "true" : "false")
     << ", \"completed\": " << (r.completed ? "true" : "false")
     << ", \"exit\": " << r.exit_code
     << ", \"instructions\": " << r.instructions
     << ", \"cycles\": " << r.cycles << ", \"calls\": " << r.calls
     << ", \"pages\": " << r.pages_mapped;
  os << ", \"reports\": [";
  for (size_t i = 0; i < r.reports.size(); ++i) {
    if (i != 0) os << ", ";
    os << r.reports[i];
  }
  os << "]";
  os << ", \"context_switches\": " << r.stats.context_switches
     << ", \"page_faults\": " << r.stats.page_faults
     << ", \"cam_refills\": " << r.stats.cam_refills;
  if (r.kind == JobKind::kChaosDiff) {
    os << ", \"clean_exit\": " << r.clean_exit << ", \"clean_completed\": "
       << (r.clean_completed ? "true" : "false")
       << ", \"injected\": " << r.injected
       << ", \"outstanding\": " << r.outstanding
       << ", \"recoveries\": " << r.stats.recoveries
       << ", \"machine_check_kills\": " << r.stats.machine_check_kills
       << ", \"watchdog_kills\": " << r.stats.watchdog_kills
       << ", \"checkpoints\": " << r.stats.checkpoints
       << ", \"rollbacks\": " << r.stats.rollbacks
       << ", \"rollback_failures\": " << r.stats.rollback_failures;
    os << ", \"faults\": [";
    for (size_t i = 0; i < r.events.size(); ++i) {
      const fault::FaultEvent& e = r.events[i];
      if (i != 0) os << ", ";
      os << "{\"kind\": \"" << fault_kind_name(e.kind)
         << "\", \"instret\": " << e.instret << ", \"resolution\": \""
         << resolution_name(e.resolution) << "\"}";
    }
    os << "]";
  }
  // Trace block only for traced jobs, so records of untraced runs stay
  // byte-identical to what they were before tracing existed.
  if (r.has_trace) {
    os << ", \"trace\": {\"events\": " << r.trace.events
       << ", \"dropped\": " << r.trace.dropped
       << ", \"samples\": " << r.trace.samples
       << ", \"wrpkr\": " << r.trace.wrpkr
       << ", \"rdpkr\": " << r.trace.rdpkr
       << ", \"denials\": " << r.trace.denials
       << ", \"seal_violations\": " << r.trace.seal_violations
       << ", \"cam_refills\": " << r.trace.cam_refills
       << ", \"traps\": " << r.trace.traps
       << ", \"syscalls\": " << r.trace.syscalls
       << ", \"context_switches\": " << r.trace.context_switches
       << ", \"pkeys_touched\": " << r.trace.pkeys_touched
       << ", \"pages_hwm\": " << r.trace.pages_hwm << "}";
  }
  os << "}";
  return os.str();
}

}  // namespace sealpk::fleet
