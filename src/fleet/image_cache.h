// Thread-safe shared image cache.
//
// Building a workload (guest program construction + instrumentation pass +
// link) is pure and deterministic in (workload, variant, perm_seal, scale),
// and the linked isa::Image is immutable once published — Machine::load only
// reads it. The cache therefore builds each distinct image exactly once and
// hands every job a std::shared_ptr<const isa::Image>; concurrent requests
// for the same key block on a shared_future instead of building twice.
// Lifetime rule: the cache owns one reference per key for its own lifetime;
// jobs may outlive the cache safely because they hold their own shared_ptr.
#pragma once

#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <tuple>

#include "fleet/job.h"
#include "isa/program.h"

namespace sealpk::fleet {

class ImageCache {
 public:
  using ImagePtr = std::shared_ptr<const isa::Image>;

  // Returns the image for (workload, ss, perm_seal, scale), building it if
  // this is the first request for the key. Throws (propagates) CheckError if
  // the build or link fails; later requests for the same key rethrow.
  ImagePtr get(const wl::Workload& workload, passes::ShadowStackKind ss,
               bool perm_seal, u64 scale);
  ImagePtr get(const JobSpec& spec) {
    return get(*spec.workload, spec.ss, spec.perm_seal, spec.scale);
  }

  // Number of actual builds performed (== number of distinct keys requested;
  // the sharing oracle in tests pins builds() == unique images).
  u64 builds() const { return builds_.load(std::memory_order_relaxed); }

 private:
  // Workload pointers are stable (the registry vector is immortal), so the
  // pointer itself is a valid key component.
  using Key = std::tuple<const wl::Workload*, u8 /*ss*/, bool, u64>;

  std::mutex mu_;
  std::map<Key, std::shared_future<ImagePtr>> images_;
  std::atomic<u64> builds_{0};
};

}  // namespace sealpk::fleet
