#include "fleet/report.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <ostream>
#include <sstream>

#include "common/json.h"

namespace sealpk::fleet {

Aggregate aggregate(const std::vector<JobResult>& results) {
  Aggregate agg;
  for (const JobResult& r : results) {
    ++agg.jobs;
    if (r.ok) ++agg.ok;
    else ++agg.failures;
    agg.instructions += r.instructions;
    agg.cycles += r.cycles;
    agg.faults_injected += r.injected;
    agg.recoveries += r.stats.recoveries;
    agg.kills += r.stats.machine_check_kills + r.stats.watchdog_kills;
    agg.checkpoints += r.stats.checkpoints;
    agg.rollbacks += r.stats.rollbacks;
    agg.wall_ms_sum += r.wall_ms;
  }
  return agg;
}

double gmean_overhead(const std::vector<JobResult>& results, wl::Suite suite,
                      passes::ShadowStackKind ss, bool perm_seal) {
  double log_sum = 0;
  unsigned count = 0;
  for (const JobResult& v : results) {
    if (v.kind != JobKind::kRun || v.workload == nullptr) continue;
    if (v.workload->suite != suite || v.ss != ss) continue;
    if (v.perm_seal != perm_seal || ss == passes::ShadowStackKind::kNone) {
      continue;
    }
    // Baseline = the kNone job for the same workload (unique per workload
    // in a well-formed sweep).
    const JobResult* base = nullptr;
    for (const JobResult& b : results) {
      if (b.kind == JobKind::kRun && b.workload == v.workload &&
          b.ss == passes::ShadowStackKind::kNone) {
        base = &b;
        break;
      }
    }
    if (base == nullptr || base->cycles == 0) continue;
    const double overhead =
        100.0 *
        (static_cast<double>(v.cycles) - static_cast<double>(base->cycles)) /
        static_cast<double>(base->cycles);
    // Same floor as sim::suite_gmean_overhead: a single near-zero bar must
    // not zero the mean (the paper's log-scale plot has the same clamp).
    log_sum += std::log(std::max(overhead, 0.01));
    ++count;
  }
  if (count == 0) return -1.0;
  return std::exp(log_sum / count);
}

namespace {

struct VariantKey {
  passes::ShadowStackKind ss;
  bool perm_seal;
};

// Every instrumented (variant, seal) combination present among kRun jobs,
// in deterministic (enum, seal) order.
std::vector<VariantKey> present_variants(
    const std::vector<JobResult>& results) {
  std::vector<VariantKey> keys;
  for (const JobResult& r : results) {
    if (r.kind != JobKind::kRun ||
        r.ss == passes::ShadowStackKind::kNone) {
      continue;
    }
    const bool seen =
        std::any_of(keys.begin(), keys.end(), [&](const VariantKey& k) {
          return k.ss == r.ss && k.perm_seal == r.perm_seal;
        });
    if (!seen) keys.push_back({r.ss, r.perm_seal});
  }
  std::sort(keys.begin(), keys.end(),
            [](const VariantKey& a, const VariantKey& b) {
              if (a.ss != b.ss) {
                return static_cast<u8>(a.ss) < static_cast<u8>(b.ss);
              }
              return !a.perm_seal && b.perm_seal;
            });
  return keys;
}

}  // namespace

void write_report(std::ostream& os, const std::vector<JobResult>& results,
                  const ReportOptions& opts) {
  const Aggregate agg = aggregate(results);
  os << "{\n";
  os << "  \"schema\": \"sealpk-fleet-v1\",\n";
  os << "  \"jobs\": " << agg.jobs << ", \"ok\": " << agg.ok
     << ", \"failures\": " << agg.failures << ",\n";
  os << "  \"totals\": {\"instructions\": " << agg.instructions
     << ", \"cycles\": " << agg.cycles
     << ", \"faults_injected\": " << agg.faults_injected
     << ", \"recoveries\": " << agg.recoveries << ", \"kills\": " << agg.kills
     << ", \"checkpoints\": " << agg.checkpoints
     << ", \"rollbacks\": " << agg.rollbacks << "},\n";

  // Suite geomeans for whatever slice of the Figure-5 matrix was run (only
  // variants with a baseline available; deterministic given the records).
  const std::vector<VariantKey> variants = present_variants(results);
  os << "  \"geomeans\": [";
  bool first = true;
  for (const wl::Suite suite : {wl::Suite::kSpec2000, wl::Suite::kSpec2006,
                                wl::Suite::kMiBench}) {
    for (const VariantKey& key : variants) {
      const double g = gmean_overhead(results, suite, key.ss, key.perm_seal);
      if (g < 0) continue;
      if (!first) os << ",";
      first = false;
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.4f", g);
      os << "\n    {\"suite\": \"" << wl::suite_name(suite)
         << "\", \"variant\": \"" << passes::shadow_stack_kind_name(key.ss)
         << "\", \"perm_seal\": " << (key.perm_seal ? "true" : "false")
         << ", \"overhead_gmean_pct\": " << buf << "}";
    }
  }
  os << (first ? "" : "\n  ") << "],\n";

  os << "  \"records\": [\n";
  for (size_t i = 0; i < results.size(); ++i) {
    os << "    " << canonical_record(results[i])
       << (i + 1 < results.size() ? "," : "") << "\n";
  }
  os << "  ]";

  if (!opts.canonical) {
    char elapsed[64];
    std::snprintf(elapsed, sizeof(elapsed), "%.3f", opts.elapsed_ms);
    char worked[64];
    std::snprintf(worked, sizeof(worked), "%.3f", agg.wall_ms_sum);
    os << ",\n  \"timing\": {\"threads\": " << opts.threads
       << ", \"elapsed_ms\": " << elapsed << ", \"job_ms_sum\": " << worked
       << ",\n    \"job_ms\": [";
    for (size_t i = 0; i < results.size(); ++i) {
      char ms[64];
      std::snprintf(ms, sizeof(ms), "%.3f", results[i].wall_ms);
      if (i != 0) os << ", ";
      os << "{\"id\": " << results[i].id << ", \"ms\": " << ms
         << ", \"worker\": " << results[i].worker << "}";
    }
    os << "]}";
  }
  os << "\n}\n";
}

bool write_report_file(const std::string& path,
                       const std::vector<JobResult>& results,
                       const ReportOptions& opts) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  write_report(out, results, opts);
  out.flush();
  return static_cast<bool>(out);
}

namespace {

// Pulls the canonical record lines (one per job) out of a report text.
std::vector<std::string> extract_records(const std::string& text) {
  std::vector<std::string> records;
  std::istringstream in(text);
  std::string line;
  bool inside = false;
  while (std::getline(in, line)) {
    const size_t start = line.find_first_not_of(' ');
    const std::string trimmed =
        start == std::string::npos ? std::string() : line.substr(start);
    if (!inside) {
      if (trimmed.rfind("\"records\": [", 0) == 0) inside = true;
      continue;
    }
    if (trimmed.rfind("]", 0) == 0) break;
    std::string rec = trimmed;
    if (!rec.empty() && rec.back() == ',') rec.pop_back();
    records.push_back(std::move(rec));
  }
  return records;
}

}  // namespace

size_t diff_reports(const std::string& a_text, const std::string& b_text,
                    std::ostream& log) {
  const std::vector<std::string> a = extract_records(a_text);
  const std::vector<std::string> b = extract_records(b_text);
  size_t diverging = 0;
  const size_t common = std::min(a.size(), b.size());
  for (size_t i = 0; i < common; ++i) {
    if (a[i] != b[i]) {
      ++diverging;
      log << "record " << i << " differs:\n  a: " << a[i]
          << "\n  b: " << b[i] << "\n";
    }
  }
  if (a.size() != b.size()) {
    diverging += (a.size() > b.size() ? a.size() : b.size()) - common;
    log << "record count differs: " << a.size() << " vs " << b.size()
        << "\n";
  }
  return diverging;
}

void write_diff_report(std::ostream& os, const std::string& a_name,
                       const std::string& b_name, size_t diverging,
                       const std::string& log_text) {
  os << "{\n";
  os << "  \"a\": \"" << json_escape(a_name) << "\",\n";
  os << "  \"b\": \"" << json_escape(b_name) << "\",\n";
  os << "  \"diverging\": " << diverging << ",\n";
  os << "  \"identical\": " << (diverging == 0 ? "true" : "false") << ",\n";
  os << "  \"log\": \"" << json_escape(log_text) << "\"\n";
  os << "}\n";
}

bool write_diff_report_file(const std::string& path, const std::string& a_name,
                            const std::string& b_name, size_t diverging,
                            const std::string& log_text) {
  std::ofstream out(path);
  if (!out) return false;
  write_diff_report(out, a_name, b_name, diverging, log_text);
  return out.good();
}

void write_matrix_json(std::ostream& os,
                       const std::vector<MatrixVariant>& variants) {
  const auto& workloads = wl::all_workloads();
  const auto& scenarios = wl::scenario_workloads();
  os << "{\n  \"schema\": \"sealpk-fleet-matrix-v1\",\n"
     << "  \"workloads\": [\n";
  for (size_t i = 0; i < workloads.size(); ++i) {
    const wl::Workload& w = workloads[i];
    os << "    {\"suite\": \"" << json_escape(wl::suite_name(w.suite))
       << "\", \"name\": \"" << json_escape(w.name)
       << "\", \"test_scale\": " << w.test_scale
       << ", \"bench_scale\": " << w.bench_scale << "}"
       << (i + 1 < workloads.size() ? "," : "") << "\n";
  }
  os << "  ],\n  \"scenarios\": [\n";
  for (size_t i = 0; i < scenarios.size(); ++i) {
    const wl::Workload& w = scenarios[i];
    os << "    {\"suite\": \"" << json_escape(wl::suite_name(w.suite))
       << "\", \"name\": \"" << json_escape(w.name)
       << "\", \"test_scale\": " << w.test_scale
       << ", \"bench_scale\": " << w.bench_scale << "}"
       << (i + 1 < scenarios.size() ? "," : "") << "\n";
  }
  os << "  ],\n  \"variants\": [\n";
  for (size_t i = 0; i < variants.size(); ++i) {
    const MatrixVariant& v = variants[i];
    os << "    {\"name\": \"" << json_escape(v.name) << "\", \"ss\": \""
       << passes::shadow_stack_kind_name(v.ss)
       << "\", \"perm_seal\": " << (v.perm_seal ? "true" : "false") << "}"
       << (i + 1 < variants.size() ? "," : "") << "\n";
  }
  os << "  ],\n  \"cells\": [\n";
  const size_t total = workloads.size() * variants.size();
  size_t cell = 0;
  for (const wl::Workload& w : workloads) {
    for (const MatrixVariant& v : variants) {
      os << "    {\"id\": " << cell << ", \"workload\": \""
         << json_escape(std::string(wl::suite_name(w.suite)) + "/" + w.name)
         << "\", \"variant\": \"" << json_escape(v.name) << "\"}"
         << (++cell < total ? "," : "") << "\n";
    }
  }
  os << "  ]\n}\n";
}

}  // namespace sealpk::fleet
