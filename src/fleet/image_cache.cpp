#include "fleet/image_cache.h"

namespace sealpk::fleet {

ImageCache::ImagePtr ImageCache::get(const wl::Workload& workload,
                                     passes::ShadowStackKind ss,
                                     bool perm_seal, u64 scale) {
  const Key key{&workload, static_cast<u8>(ss), perm_seal, scale};
  std::shared_future<ImagePtr> fut;
  bool builder = false;
  std::promise<ImagePtr> promise;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = images_.find(key);
    if (it != images_.end()) {
      fut = it->second;
    } else {
      fut = promise.get_future().share();
      images_.emplace(key, fut);
      builder = true;
    }
  }
  if (builder) {
    // Build outside the lock: other keys keep flowing, and waiters on this
    // key block on the future, not the mutex.
    builds_.fetch_add(1, std::memory_order_relaxed);
    try {
      isa::Program prog = workload.build(scale);
      if (ss != passes::ShadowStackKind::kNone) {
        passes::ShadowStackOptions opts;
        opts.kind = ss;
        opts.perm_seal = perm_seal;
        passes::apply_shadow_stack(prog, opts);
      }
      promise.set_value(std::make_shared<const isa::Image>(prog.link()));
    } catch (...) {
      // Publish the failure: every job sharing the key fails the same way
      // instead of half the pool hanging on a future that never resolves.
      promise.set_exception(std::current_exception());
    }
  }
  return fut.get();
}

}  // namespace sealpk::fleet
