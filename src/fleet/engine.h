// Fleet engine: a fixed-size worker pool draining an MPMC job queue.
//
// Determinism contract: each worker owns a private Machine per job (no
// machine state is ever shared), every job input is pinned in its JobSpec,
// and results land in the slot indexed by JobSpec::id — so the canonical
// per-job records are byte-identical for any thread count and any
// scheduling order. The only cross-thread state is the shared immutable
// image cache, the atomic dispatch ticket, and the result vector (disjoint
// slots). Crash containment: a host exception escaping a job (CheckError,
// bad_alloc, a torn invariant) fails only that job; the pool keeps
// draining.
#pragma once

#include <functional>
#include <vector>

#include "fleet/image_cache.h"
#include "fleet/job.h"

namespace sealpk::fleet {

struct FleetOptions {
  // Worker threads. 0 = one per host hardware thread; 1 = run inline on the
  // calling thread (no pool spawned).
  unsigned threads = 1;
  // Progress callback, invoked as each job finishes. Serialized under an
  // internal mutex, so the callback itself needs no locking; completion
  // order is scheduling-dependent — anything that must be deterministic
  // belongs in the returned results, not here.
  std::function<void(const JobResult&)> on_done;
};

// Executes one job on the calling thread (the unit the pool dispatches).
// Never throws: host exceptions are contained into a failed result.
JobResult execute_job(const JobSpec& spec, ImageCache& cache);

// The pool primitive under run_jobs, reusable by any batch driver (the
// serve CLI drains its scenario matrix through it): invokes
// task(index, worker) exactly once for every index in [0, n), on `threads`
// workers (0 = one per host hardware thread, <=1 = inline on the calling
// thread). The task must write results only to per-index slots; dispatch
// order is an MPMC ticket and carries no determinism.
void run_indexed(size_t n, unsigned threads,
                 const std::function<void(size_t, unsigned)>& task);

// Runs every spec and returns results ordered by spec index (results[i]
// belongs to specs[i], whatever specs[i].id says — callers normally keep
// id == index).
std::vector<JobResult> run_jobs(const std::vector<JobSpec>& specs,
                                ImageCache& cache,
                                const FleetOptions& opts = {});

// The oracle verdict strings kChaosDiff produces (shared with sealpk-chaos
// output and its tests).
namespace verdicts {
inline constexpr char kCleanIncomplete[] = "FAIL: clean run did not complete";
inline constexpr char kUnaccounted[] = "FAIL: unaccounted fault events";
inline constexpr char kRolledBack[] = "ok (rolled back, output identical)";
inline constexpr char kNoFaults[] = "ok (no faults fired)";
inline constexpr char kIdentical[] = "ok (output identical)";
inline constexpr char kKilled[] = "ok (process killed, distinct exit code)";
inline constexpr char kKilledBadCode[] =
    "FAIL: killed without a distinct exit code";
inline constexpr char kRecovered[] = "ok (divergence, recovery recorded)";
inline constexpr char kDiverged[] =
    "FAIL: output diverged with no recovery or kill recorded";
}  // namespace verdicts

}  // namespace sealpk::fleet
