#include "fleet/engine.h"

#include <atomic>
#include <chrono>
#include <exception>
#include <mutex>
#include <sstream>
#include <thread>

namespace sealpk::fleet {

namespace {

using Clock = std::chrono::steady_clock;

void stamp_identity(const JobSpec& spec, JobResult* r) {
  r->id = spec.id;
  r->label = spec.label();
  r->workload = spec.workload;
  r->ss = spec.ss;
  r->perm_seal = spec.perm_seal;
  r->kind = spec.kind;
}

const char* exit_code_name(i64 code) {
  if (code == os::kExitMachineCheck) return "machine-check";
  if (code == os::kExitTrapStorm) return "trap-storm";
  if (code == os::kExitLivelock) return "livelock";
  return nullptr;
}

// Everything one machine run yields that the job verdicts consume.
struct RunCapture {
  bool loaded = false;
  bool completed = false;
  i64 exit_code = 0;
  u64 instructions = 0;
  u64 cycles = 0;
  u64 calls = 0;
  u64 pages_mapped = 0;
  std::string console;
  std::vector<u64> reports;
  sim::MachineStats stats;
  u64 injected = 0;
  u64 outstanding = 0;
  std::vector<fault::FaultEvent> events;
  bool has_trace = false;
  obs::TraceSummary trace;
  std::vector<u8> trace_blob;
};

RunCapture run_machine(const isa::Image& image, const sim::MachineConfig& cfg,
                       u64 budget, bool keep_trace_blob = false) {
  RunCapture cap;
  sim::Machine machine(cfg);
  const int pid = machine.load(image);
  if (pid == sim::Machine::kLoadRefused) return cap;
  cap.loaded = true;
  const sim::RunOutcome outcome = machine.run(budget);
  cap.completed = outcome.completed;
  cap.instructions = outcome.instructions;
  cap.cycles = outcome.cycles;
  cap.exit_code = machine.exit_code(pid);
  cap.calls = machine.hart().stats().calls;
  cap.pages_mapped = machine.kernel().process(pid).aspace->pages_mapped();
  cap.console = machine.kernel().console();
  cap.reports = machine.kernel().reports();
  cap.stats = sim::collect_stats(machine);
  if (machine.injector() != nullptr) {
    cap.injected = machine.injector()->total_injected();
    cap.outstanding = machine.injector()->outstanding();
    cap.events = machine.injector()->events();
  }
  if (machine.recorder() != nullptr) {
    cap.has_trace = true;
    cap.trace = machine.recorder()->summary(machine.hart().cycles());
    if (keep_trace_blob) cap.trace_blob = machine.recorder()->serialize_blob();
  }
  return cap;
}

void execute_run(const JobSpec& spec, const isa::Image& image, JobResult* r) {
  RunCapture cap =
      run_machine(image, spec.config, spec.budget, spec.keep_trace_blob);
  if (!cap.loaded) {
    r->exit_code = sim::Machine::kNoExitCode;
    r->verdict = "load refused";
    return;
  }
  r->ran = true;
  r->completed = cap.completed;
  r->exit_code = cap.exit_code;
  r->instructions = cap.instructions;
  r->cycles = cap.cycles;
  r->calls = cap.calls;
  r->pages_mapped = cap.pages_mapped;
  r->reports = cap.reports;
  r->stats = cap.stats;
  r->injected = cap.injected;
  r->outstanding = cap.outstanding;
  r->events = cap.events;
  r->has_trace = cap.has_trace;
  r->trace = cap.trace;
  r->trace_blob = std::move(cap.trace_blob);
  if (!cap.completed) {
    r->verdict = "timeout: instruction budget exhausted";
    return;
  }
  if (cap.exit_code != 0) {
    const char* name = exit_code_name(cap.exit_code);
    std::ostringstream os;
    os << "exit " << cap.exit_code;
    if (name != nullptr) os << " (" << name << ")";
    r->verdict = os.str();
    return;
  }
  if (spec.verify_checksum) {
    const u64 golden = spec.workload->golden(spec.scale);
    if (cap.reports.size() != 1 || cap.reports[0] != golden) {
      r->verdict = "checksum mismatch vs golden model";
      return;
    }
  }
  r->ok = true;
  r->verdict = "ok";
}

void execute_chaos_diff(const JobSpec& spec, const isa::Image& image,
                        JobResult* r) {
  sim::MachineConfig clean_cfg = spec.config;
  clean_cfg.fault_plan = fault::FaultPlan{};
  const RunCapture clean = run_machine(image, clean_cfg, spec.budget);
  RunCapture chaos =
      run_machine(image, spec.config, spec.budget, spec.keep_trace_blob);

  r->ran = clean.loaded && chaos.loaded;
  r->completed = chaos.completed;
  r->exit_code = chaos.loaded ? chaos.exit_code : sim::Machine::kNoExitCode;
  r->instructions = chaos.instructions;
  r->cycles = chaos.cycles;
  r->calls = chaos.calls;
  r->pages_mapped = chaos.pages_mapped;
  r->reports = chaos.reports;
  r->stats = chaos.stats;
  r->injected = chaos.injected;
  r->outstanding = chaos.outstanding;
  r->events = chaos.events;
  r->clean_exit = clean.loaded ? clean.exit_code : sim::Machine::kNoExitCode;
  r->clean_completed = clean.completed;
  r->has_trace = chaos.has_trace;
  r->trace = chaos.trace;
  r->trace_blob = std::move(chaos.trace_blob);

  if (!r->ran) {
    r->verdict = "load refused";
    return;
  }

  // The differential oracle (same logic and strings as sealpk-chaos ran
  // serially): the chaos run must be bit-identical to the clean run, or
  // every divergence must be explained by a recorded recovery or a
  // distinct-exit-code kill — and no fault event may be left unaccounted.
  const bool identical = chaos.completed == clean.completed &&
                         chaos.exit_code == clean.exit_code &&
                         chaos.console == clean.console &&
                         chaos.reports == clean.reports;
  const u64 kills =
      chaos.stats.machine_check_kills + chaos.stats.watchdog_kills;

  if (!clean.completed) {
    r->verdict = verdicts::kCleanIncomplete;
  } else if (chaos.outstanding != 0) {
    r->verdict = verdicts::kUnaccounted;
  } else if (identical) {
    // A rollback rewinds the event log to the restored checkpoint, so check
    // it before the injected count — "no faults fired" would be misleading
    // when firings were absorbed by re-execution.
    r->ok = true;
    r->verdict = chaos.stats.rollbacks != 0 ? verdicts::kRolledBack
                 : chaos.injected == 0      ? verdicts::kNoFaults
                                            : verdicts::kIdentical;
  } else if (kills > 0) {
    const bool distinct = chaos.exit_code == os::kExitMachineCheck ||
                          chaos.exit_code == os::kExitTrapStorm ||
                          chaos.exit_code == os::kExitLivelock ||
                          chaos.exit_code == clean.exit_code;
    r->ok = distinct;
    r->verdict = distinct ? verdicts::kKilled : verdicts::kKilledBadCode;
  } else if (chaos.stats.recoveries > 0) {
    r->ok = true;
    r->verdict = verdicts::kRecovered;
  } else {
    r->verdict = verdicts::kDiverged;
  }
}

}  // namespace

JobResult execute_job(const JobSpec& spec, ImageCache& cache) {
  JobResult result;
  stamp_identity(spec, &result);
  const Clock::time_point start = Clock::now();
  try {
    const ImageCache::ImagePtr image = cache.get(spec);
    switch (spec.kind) {
      case JobKind::kRun:
        execute_run(spec, *image, &result);
        break;
      case JobKind::kChaosDiff:
        execute_chaos_diff(spec, *image, &result);
        break;
    }
  } catch (const std::exception& e) {
    // Containment: Machine::run already swallows host exceptions; anything
    // arriving here escaped image build/load or the result plumbing. It
    // fails this job only.
    result.ok = false;
    result.verdict = std::string("host exception escaped: ") + e.what();
  }
  result.wall_ms = std::chrono::duration<double, std::milli>(Clock::now() -
                                                             start)
                       .count();
  return result;
}

std::vector<JobResult> run_jobs(const std::vector<JobSpec>& specs,
                                ImageCache& cache, const FleetOptions& opts) {
  // Warm the lazily-initialized workload registry on this thread before the
  // pool starts. The C++11 magic static is already race-free; doing it here
  // keeps first-touch cost out of the measured jobs and out of TSan's way.
  (void)wl::all_workloads();

  std::vector<JobResult> results(specs.size());
  std::mutex done_mu;
  run_indexed(specs.size(), opts.threads, [&](size_t i, unsigned wid) {
    JobResult r = execute_job(specs[i], cache);
    r.worker = wid;
    if (opts.on_done) {
      std::lock_guard<std::mutex> lock(done_mu);
      opts.on_done(r);
    }
    results[i] = std::move(r);
  });
  return results;
}

void run_indexed(size_t n, unsigned threads,
                 const std::function<void(size_t, unsigned)>& task) {
  std::atomic<size_t> next{0};
  auto drain = [&](unsigned wid) {
    for (;;) {
      const size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      task(i, wid);
    }
  };

  if (threads == 0) threads = std::max(1u, std::thread::hardware_concurrency());
  if (n != 0 && static_cast<size_t>(threads) > n) {
    threads = static_cast<unsigned>(n);
  }
  if (threads <= 1) {
    drain(0);
    return;
  }
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (unsigned w = 0; w < threads; ++w) {
    pool.emplace_back(drain, w);
  }
  for (std::thread& t : pool) t.join();
}

}  // namespace sealpk::fleet
