// Result aggregation and JSON reporting for fleet runs.
//
// The "records" array of a report is the canonical, deterministic part:
// one canonical_record() line per job, ordered by job id. Wall-clock,
// thread count and per-job timing live in a separate "timing" section that
// canonical mode omits, so `sealpk-fleet diff` (and the determinism tests)
// can compare reports from different thread counts byte-for-byte.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "fleet/job.h"

namespace sealpk::fleet {

// Cross-job totals (sums over every result).
struct Aggregate {
  u64 jobs = 0;
  u64 ok = 0;
  u64 failures = 0;
  u64 instructions = 0;
  u64 cycles = 0;
  u64 faults_injected = 0;
  u64 recoveries = 0;
  u64 kills = 0;  // machine-check + watchdog
  u64 checkpoints = 0;
  u64 rollbacks = 0;
  double wall_ms_sum = 0.0;  // total cpu-side work (not elapsed)
};

Aggregate aggregate(const std::vector<JobResult>& results);

// Geometric mean of per-workload overhead (percent, vs the kNone baseline
// job for the same workload among `results`) across the suite — the same
// math as sim::suite_gmean_overhead, including the 0.01% clamp. Returns a
// negative value when the suite has no (baseline, variant) pair, so callers
// can skip rather than divide by nothing.
double gmean_overhead(const std::vector<JobResult>& results, wl::Suite suite,
                      passes::ShadowStackKind ss, bool perm_seal = false);

struct ReportOptions {
  unsigned threads = 1;
  double elapsed_ms = 0.0;
  // Canonical mode drops the "timing" section (the only scheduling-
  // dependent bytes), making whole reports comparable across thread counts.
  bool canonical = false;
};

void write_report(std::ostream& os, const std::vector<JobResult>& results,
                  const ReportOptions& opts);
// Returns false when the file cannot be written.
bool write_report_file(const std::string& path,
                       const std::vector<JobResult>& results,
                       const ReportOptions& opts);

// One entry of the instrumentation axis as the CLI spells it (the table
// itself lives with the CLI; callers pass it in).
struct MatrixVariant {
  std::string name;
  passes::ShadowStackKind ss = passes::ShadowStackKind::kNone;
  bool perm_seal = false;
};

// Machine-readable workload x variant matrix ("sealpk-fleet-matrix-v1"):
// every Figure-5 workload, every variant, and the full cell cross product
// — so the SLO gate and CI asserts can enumerate cells without scraping
// `sealpk-fleet list` text. Deterministic (list order x table order).
void write_matrix_json(std::ostream& os,
                       const std::vector<MatrixVariant>& variants);

// Compares the canonical "records" arrays of two report texts. Returns the
// number of diverging records (0 = byte-identical record sets); mismatch
// details go to `log`.
size_t diff_reports(const std::string& a_text, const std::string& b_text,
                    std::ostream& log);

// Machine-readable form of a diff_reports outcome, for `sealpk-fleet diff
// --json=...`. The JSON carries the verdict only; the process exit code
// must signal divergence identically in both output modes (the CLI
// regression in tests/test_fleet.cpp pins that contract).
void write_diff_report(std::ostream& os, const std::string& a_name,
                       const std::string& b_name, size_t diverging,
                       const std::string& log_text);
// Returns false when the file cannot be written.
bool write_diff_report_file(const std::string& path, const std::string& a_name,
                            const std::string& b_name, size_t diverging,
                            const std::string& log_text);

}  // namespace sealpk::fleet
