// Job model for the fleet batch-execution engine.
//
// A Job is a fully-specified run: which workload, which instrumentation
// variant, at what scale, under which MachineConfig (fault plan, verify
// policy, checkpoint interval) and within what instruction budget. Because
// every input is pinned in the spec and each worker owns a private Machine,
// a job's *canonical record* — the deterministic slice of its result — is
// bit-identical regardless of thread count or scheduling order. Wall-clock
// and worker id are observability-only and live outside the canonical
// record.
#pragma once

#include <string>
#include <vector>

#include "fault/fault.h"
#include "passes/shadow_stack.h"
#include "sim/machine.h"
#include "sim/stats.h"
#include "workloads/workload.h"

namespace sealpk::fleet {

enum class JobKind : u8 {
  kRun,        // one machine: load, run, verify checksum against the golden
  kChaosDiff,  // two machines: clean vs fault-injected, differential oracle
};

const char* job_kind_name(JobKind kind);

struct JobSpec {
  u32 id = 0;  // dense index; doubles as the result slot, so records never
               // depend on completion order
  const wl::Workload* workload = nullptr;
  passes::ShadowStackKind ss = passes::ShadowStackKind::kNone;
  bool perm_seal = false;  // --seal: WRPKR range restriction (SealPK kinds)
  u64 scale = 1;
  // Per-job instruction-budget timeout: a runaway job stops here and is
  // recorded as a timeout instead of starving the pool.
  u64 budget = 8'000'000'000ULL;
  JobKind kind = JobKind::kRun;
  // Full machine wiring for this job. For kChaosDiff this is the *chaos*
  // config; the clean run uses the same config with the fault plan cleared.
  sim::MachineConfig config;
  bool verify_checksum = true;  // kRun: compare reports against golden()
  // When config.trace.enabled: also carry the serialized trace blob in
  // JobResult::trace_blob (off by default — blobs can be large; the metric
  // summary is always captured when tracing is on).
  bool keep_trace_blob = false;

  // "suite/name [variant]" — also the per-job label in reports.
  std::string label() const;
};

struct JobResult {
  // --- identity (copied from the spec so reports need only results) -------
  u32 id = 0;
  std::string label;
  const wl::Workload* workload = nullptr;
  passes::ShadowStackKind ss = passes::ShadowStackKind::kNone;
  bool perm_seal = false;
  JobKind kind = JobKind::kRun;

  // --- canonical outcome ---------------------------------------------------
  bool ran = false;        // false: load refused or host exception before run
  bool completed = false;  // run() finished inside the instruction budget
  bool ok = false;         // job-level verdict (checksum / oracle passed)
  std::string verdict;     // human-readable one-liner
  i64 exit_code = 0;
  u64 instructions = 0;
  u64 cycles = 0;
  u64 calls = 0;         // jal/jalr-with-ra retired (Figure-5 input)
  u64 pages_mapped = 0;  // resident set at exit (Figure-5 input)
  std::vector<u64> reports;
  sim::MachineStats stats;

  // --- kChaosDiff extras (zero / empty for kRun) ---------------------------
  i64 clean_exit = 0;
  bool clean_completed = false;
  u64 injected = 0;
  u64 outstanding = 0;
  std::vector<fault::FaultEvent> events;

  // --- per-job trace metrics (spec.config.trace.enabled jobs only) ---------
  // Part of the canonical record when present: the metrics are a pure fold
  // over the deterministic event stream. For kChaosDiff the block describes
  // the chaos run.
  bool has_trace = false;
  obs::TraceSummary trace;
  // Serialized trace blob, captured only when spec.keep_trace_blob was set.
  // Deterministic but excluded from the canonical record (size).
  std::vector<u8> trace_blob;

  // --- observability only: excluded from the canonical record --------------
  double wall_ms = 0.0;  // host wall-clock spent executing this job
  unsigned worker = 0;   // pool slot that ran it
};

// The deterministic slice of a result as a single-line JSON object. This is
// the byte-identity contract: for a fixed spec list, canonical_record() of
// every job is identical between --threads 1 and --threads N. Integers only
// (no floats), no wall-clock, no worker id.
std::string canonical_record(const JobResult& result);

}  // namespace sealpk::fleet
