// libmpk-style software virtualisation of protection keys (Park et al.,
// ATC'19), used as the paper's comparison point for scaling beyond the
// physical key count (§VI: "libmpk suffers from large overheads due to
// expensive PTE updates").
//
// Model: V virtual domains share P physical keys. Using a domain whose
// virtual key is not currently mapped evicts the least-recently-used
// mapped domain and re-keys BOTH domains' pages (PTE rewrites + TLB
// flush) — that PTE traffic is precisely libmpk's scaling cost. The class
// is a host-level cost model driven by TimingModel constants, so it can
// wrap either hardware flavour (16 physical keys for Intel MPK, 1024 for
// SealPK).
#pragma once

#include <list>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/bits.h"
#include "common/check.h"
#include "core/timing.h"

namespace sealpk::mpk {

struct VirtStats {
  u64 uses = 0;
  u64 hits = 0;
  u64 evictions = 0;
  u64 pte_rewrites = 0;
  u64 cycles = 0;  // total modelled cost of all use() calls
};

class KeyVirtualizer {
 public:
  // physical_keys: usable keys (excluding key 0); e.g. 15 for Intel MPK,
  // 1023 for SealPK.
  KeyVirtualizer(unsigned physical_keys, const core::TimingModel& timing)
      : physical_keys_(physical_keys), timing_(timing) {
    SEALPK_CHECK(physical_keys > 0);
  }

  // Registers a virtual domain covering `pages` pages. Returns its id.
  u64 create_domain(u64 pages) {
    domains_.push_back({pages, std::nullopt});
    return domains_.size() - 1;
  }

  u64 domain_count() const { return domains_.size(); }

  // Models one permission update on `domain` (the pkey_set / WRPKRU the
  // application performs). Returns the modelled cycle cost of this use.
  u64 use(u64 domain) {
    SEALPK_CHECK(domain < domains_.size());
    ++stats_.uses;
    u64 cost = timing_.rocc_cycles + timing_.base_cycles;  // the write itself
    Domain& d = domains_[domain];
    if (d.physical.has_value()) {
      ++stats_.hits;
      touch(domain);
    } else {
      // Miss: grab a free physical key or evict the LRU mapping.
      cost += timing_.syscall_dispatch_cycles;  // libmpk trap into its lib
      if (mapped_.size() < physical_keys_) {
        d.physical = static_cast<unsigned>(mapped_.size() + 1);
      } else {
        const u64 victim = lru_.back();
        lru_.pop_back();
        mapped_.erase(victim);
        Domain& v = domains_[victim];
        d.physical = v.physical;
        v.physical.reset();
        ++stats_.evictions;
        // Re-key the victim's pages AND this domain's pages: the PTE
        // rewrite storm libmpk pays.
        const u64 pages = v.pages + d.pages;
        stats_.pte_rewrites += pages;
        cost += pages * timing_.pte_update_cycles + timing_.tlb_flush_cycles;
      }
      mapped_[domain] = lru_.insert(lru_.begin(), domain);
    }
    stats_.cycles += cost;
    return cost;
  }

  const VirtStats& stats() const { return stats_; }

 private:
  struct Domain {
    u64 pages = 0;
    std::optional<unsigned> physical;
  };

  void touch(u64 domain) {
    auto it = mapped_.find(domain);
    SEALPK_CHECK(it != mapped_.end());
    lru_.erase(it->second);
    it->second = lru_.insert(lru_.begin(), domain);
  }

  unsigned physical_keys_;
  core::TimingModel timing_;
  std::vector<Domain> domains_;
  std::list<u64> lru_;  // front = most recent
  std::unordered_map<u64, std::list<u64>::iterator> mapped_;
  VirtStats stats_;
};

}  // namespace sealpk::mpk
