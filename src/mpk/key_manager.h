// Intel-MPK-style key manager: 16 keys, *eager* free.
//
// This faithfully reproduces the Linux behaviour the paper criticises
// (§II-A): pkey_free only clears the allocation bit; the freed key remains
// in the PTEs of all pages that carried it, and a later pkey_alloc can hand
// the same key to a new domain — the pkey use-after-free. Tests and the
// `use_after_free` example demonstrate the bug here and its absence in the
// SealPK manager.
#pragma once

#include <bitset>

#include "hw/pkru.h"
#include "os/key_manager.h"

namespace sealpk::mpk {

class MpkKeyManager : public os::KeyManager {
 public:
  MpkKeyManager() {
    alloc_.set(0);  // pkey 0: default domain
  }

  unsigned num_keys() const override { return hw::kMpkNumPkeys; }

  i64 alloc() override {
    for (u32 k = 1; k < hw::kMpkNumPkeys; ++k) {
      if (!alloc_[k]) {
        alloc_.set(k);
        return k;
      }
    }
    return os::err::kNoSpc;
  }

  i64 free_key(u32 pkey) override {
    if (pkey == 0 || pkey >= hw::kMpkNumPkeys || !alloc_[pkey]) {
      return os::err::kInval;
    }
    // Eager free: no dirty map, no page scrub — the use-after-free window
    // opens here.
    alloc_.reset(pkey);
    return 0;
  }

  bool allocated(u32 pkey) const override {
    return pkey < hw::kMpkNumPkeys && alloc_[pkey];
  }

  bool assignable(u32 pkey) const override { return allocated(pkey); }

  void page_delta(u32 /*pkey*/, i64 /*pages*/) override {
    // Linux's MPK support keeps no per-key page counts.
  }

  void save_state(ByteWriter& w) const override {
    w.put_u64(alloc_.to_ullong());
  }
  void load_state(ByteReader& r) override {
    alloc_ = std::bitset<hw::kMpkNumPkeys>(r.get_u64());
  }

 private:
  std::bitset<hw::kMpkNumPkeys> alloc_;
};

}  // namespace sealpk::mpk
