// Host driver for the session-server workload (DESIGN.md §15): the
// key-churn benchmark behind BENCH_keychurn.json and the sealpk-vkey CLI.
//
// One run builds the guest for a SessionConfig, executes it on a private
// Machine and folds the result into an integer-only canonical record:
// guest checksum (verified against the host golden), the vkey table's churn
// counters, and a throughput headline — churn operations (alloc + free +
// mprotect + open/close) per second at the board's nominal 50 MHz, derived
// from modelled cycles. The op counts come from the host replay of the
// churn schedule, so raw and virtualized cells of the same shape divide the
// same numerator and the ratio is exactly the virtualization tax.
//
// The sweep fans its cells out through fleet::run_indexed (one private
// machine per cell, results keyed by index), so the concatenated canonical
// records are byte-identical at any host thread count — the CLI's
// --selfcheck re-runs serially and compares.
#pragma once

#include <string>
#include <vector>

#include "mpk/vkey_table.h"
#include "obs/recorder.h"
#include "os/kernel.h"

namespace sealpk::mpk {

// The paper's Rocket SoC clocks 50 MHz on the Zedboard; throughput is
// reported at that nominal rate from modelled cycles.
inline constexpr u64 kSessionNominalHz = 50'000'000;

// Raw (physical-pkey) cells must leave headroom under the 1023 usable keys
// for reconnect churn against lazily de-allocated keys.
inline constexpr u64 kRawSessionCap = 768;

struct SessionConfig {
  u64 sessions = 1024;
  u64 ops = 2048;
  u64 seed = 0x5EED0F5EA1ULL;  // wl::kWorkloadSeed
  u32 mru_slots = 8;
  bool lazy_sync = false;  // eager park vs drain queue (vkey_lazy_sync)
  bool raw = false;        // physical pkeys; requires sessions <= cap
  u64 max_instructions = 4'000'000'000ULL;
  // Keep an obs event trace of the run (vkey map/evict/sync events feed
  // the span layer, DESIGN.md §16). Tracing never perturbs the machine,
  // so traced and untraced cells produce identical canonical records.
  bool trace = false;
};

struct SessionResult {
  bool completed = false;
  i64 exit_code = -1;
  bool checksum_ok = false;
  u64 checksum = 0;
  u64 expected = 0;
  u64 connects = 0;   // schedule replay: ramp + reconnects
  u64 reconnects = 0;
  u64 touches = 0;
  u64 churn_ops = 0;  // allocs + frees + mprotects + opens/closes
  u64 live = 0;       // live vkeys at exit (0 in raw mode)
  u64 mapped = 0;     // vkeys holding a physical key at exit
  u64 instructions = 0;
  u64 cycles = 0;
  VkeyStats vstats;   // all-zero in raw mode
  obs::Trace trace;   // populated when SessionConfig::trace is set

  bool ok() const { return completed && exit_code == 0 && checksum_ok; }
  // Integer ops/sec (kSessionNominalHz): deterministic across hosts.
  u64 churn_per_sec() const {
    return cycles == 0 ? 0 : churn_ops * kSessionNominalHz / cycles;
  }
};

SessionResult run_session_server(const SessionConfig& cfg);

// One integer-only line; byte-identical across host thread counts.
std::string session_record(const SessionConfig& cfg, const SessionResult& r);

// --- churn sweep (BENCH_keychurn.json) --------------------------------------
struct ChurnCell {
  SessionConfig cfg;
  SessionResult result;
};

// For every scale: virtualized eager + lazy cells, plus a raw cell while
// the scale fits under kRawSessionCap. ops = 2 * sessions. Drained through
// the fleet pool on `threads` workers (0 = one per hardware thread).
std::vector<ChurnCell> run_churn_sweep(const std::vector<u64>& scales,
                                       u64 seed, unsigned threads);

// The concatenation of every cell's canonical record (the selfcheck unit).
std::string sweep_records(const std::vector<ChurnCell>& cells);

// Machine-readable sweep report; still integer-only, so a regenerated
// BENCH_keychurn.json diffs clean byte-for-byte.
std::string churn_json(const std::vector<ChurnCell>& cells);

}  // namespace sealpk::mpk
