#include "mpk/session.h"

#include <algorithm>
#include <sstream>

#include "fleet/engine.h"
#include "hw/pkr.h"
#include "hw/pkru.h"
#include "mpk/key_manager.h"
#include "mpk/virt.h"
#include "sim/machine.h"
#include "workloads/workload.h"

namespace sealpk::mpk {

// The 16-physical-key MPK flavour exists alongside SealPK throughout the
// tree; the virtualization layer itself is SealPK-only (see syscall_abi.h),
// which the pins below keep honest (they anchored virt.cpp before this TU
// absorbed it).
static_assert(hw::kNumPkeys == 1024);
static_assert(hw::kMpkNumPkeys == 16);

namespace {

const char* mode_name(const SessionConfig& cfg) {
  if (cfg.raw) return "raw";
  return cfg.lazy_sync ? "virt-lazy" : "virt-eager";
}

}  // namespace

SessionResult run_session_server(const SessionConfig& cfg) {
  SEALPK_CHECK_MSG(!cfg.raw || cfg.sessions <= kRawSessionCap,
                   "raw mode needs sessions <= " << kRawSessionCap);
  const wl::SessionShape shape{.sessions = cfg.sessions,
                               .ops = cfg.ops,
                               .seed = cfg.seed,
                               .raw = cfg.raw};

  sim::MachineConfig mc;
  mc.hart.flavor = core::IsaFlavor::kSealPk;
  mc.kernel.vkey_mru_slots = cfg.mru_slots;
  mc.kernel.vkey_lazy_sync = cfg.lazy_sync;
  mc.trace.enabled = cfg.trace;
  // One arena page per session plus page tables and slack; the default
  // 256 MiB board covers everything up to ~50k sessions.
  const u64 arena = cfg.sessions * mem::kPageSize;
  mc.mem_bytes =
      std::max<u64>(mc.mem_bytes,
                    align_up(arena + arena / 64 + (96ULL << 20),
                             mem::kPageSize));

  sim::Machine machine(mc);
  const int pid = machine.load(wl::build_session_prog(shape).link());
  SEALPK_CHECK(pid >= 0);
  const sim::RunOutcome out = machine.run(cfg.max_instructions);

  SessionResult r;
  r.completed = out.completed;
  r.instructions = out.instructions;
  r.cycles = out.cycles;
  r.exit_code = machine.exit_code(pid);
  r.expected = wl::golden_session_sum(shape);
  const auto& reports = machine.kernel().reports();
  r.checksum = reports.empty() ? 0 : reports.front();
  r.checksum_ok = r.completed && r.checksum == r.expected;

  const wl::SessionSchedule sched = wl::session_schedule(shape);
  r.connects = sched.connects;
  r.reconnects = sched.reconnects;
  r.touches = sched.touches;
  // alloc + mprotect + open + close per connect, free per reconnect,
  // open + close per touch — mode-independent, so raw and virtualized
  // cells of one shape share the numerator.
  r.churn_ops = 4 * sched.connects + sched.reconnects + 2 * sched.touches;

  if (!cfg.raw) {
    const os::Process& proc = machine.kernel().process(pid);
    if (proc.vkeys) {
      r.vstats = proc.vkeys->stats();
      r.live = proc.vkeys->live();
      r.mapped = proc.vkeys->mapped();
    }
  }
  if (machine.recorder() != nullptr) r.trace = machine.recorder()->trace();
  return r;
}

std::string session_record(const SessionConfig& cfg,
                           const SessionResult& r) {
  std::ostringstream os;
  const VkeyStats& v = r.vstats;
  os << "mode=" << mode_name(cfg) << " sessions=" << cfg.sessions
     << " ops=" << cfg.ops << " seed=" << cfg.seed << " mru=" << cfg.mru_slots
     << " ok=" << (r.ok() ? 1 : 0) << " checksum=" << r.checksum
     << " live=" << r.live << " mapped=" << r.mapped
     << " allocs=" << v.allocs << " frees=" << v.frees << " sets=" << v.sets
     << " mprotects=" << v.mprotects << " map_ins=" << v.map_ins
     << " revivals=" << v.revivals << " mru_hits=" << v.mru_hits
     << " evictions=" << v.evictions << " drains=" << v.drains
     << " drain_flushes=" << v.drain_flushes << " pte_rekeys=" << v.pte_rekeys
     << " tlb_flushes=" << v.tlb_flushes << " churn_ops=" << r.churn_ops
     << " instructions=" << r.instructions << " cycles=" << r.cycles
     << " churn_per_sec=" << r.churn_per_sec() << "\n";
  return os.str();
}

std::vector<ChurnCell> run_churn_sweep(const std::vector<u64>& scales,
                                       u64 seed, unsigned threads) {
  std::vector<ChurnCell> cells;
  for (const u64 sessions : scales) {
    for (const bool lazy : {false, true}) {
      ChurnCell cell;
      cell.cfg.sessions = sessions;
      cell.cfg.ops = 2 * sessions;
      cell.cfg.seed = seed;
      cell.cfg.lazy_sync = lazy;
      cells.push_back(cell);
    }
    if (sessions <= kRawSessionCap) {
      ChurnCell cell;
      cell.cfg.sessions = sessions;
      cell.cfg.ops = 2 * sessions;
      cell.cfg.seed = seed;
      cell.cfg.raw = true;
      cells.push_back(cell);
    }
  }
  fleet::run_indexed(cells.size(), threads, [&cells](size_t i, unsigned) {
    cells[i].result = run_session_server(cells[i].cfg);
  });
  return cells;
}

std::string sweep_records(const std::vector<ChurnCell>& cells) {
  std::string out;
  for (const ChurnCell& cell : cells) {
    out += session_record(cell.cfg, cell.result);
  }
  return out;
}

std::string churn_json(const std::vector<ChurnCell>& cells) {
  std::ostringstream os;
  os << "{\n"
     << "  \"bench\": \"keychurn\",\n"
     << "  \"nominal_hz\": " << kSessionNominalHz << ",\n"
     << "  \"physical_keys\": " << (hw::kNumPkeys - 1) << ",\n"
     << "  \"cells\": [\n";
  for (size_t i = 0; i < cells.size(); ++i) {
    const SessionConfig& cfg = cells[i].cfg;
    const SessionResult& r = cells[i].result;
    const VkeyStats& v = r.vstats;
    os << "    {\"mode\": \"" << mode_name(cfg) << "\""
       << ", \"sessions\": " << cfg.sessions << ", \"ops\": " << cfg.ops
       << ", \"seed\": " << cfg.seed << ", \"mru_slots\": " << cfg.mru_slots
       << ", \"ok\": " << (r.ok() ? "true" : "false")
       << ", \"checksum\": " << r.checksum << ", \"live\": " << r.live
       << ", \"mapped\": " << r.mapped << ", \"allocs\": " << v.allocs
       << ", \"frees\": " << v.frees << ", \"sets\": " << v.sets
       << ", \"mprotects\": " << v.mprotects << ", \"map_ins\": " << v.map_ins
       << ", \"revivals\": " << v.revivals << ", \"mru_hits\": " << v.mru_hits
       << ", \"evictions\": " << v.evictions << ", \"drains\": " << v.drains
       << ", \"drain_flushes\": " << v.drain_flushes
       << ", \"pte_rekeys\": " << v.pte_rekeys
       << ", \"tlb_flushes\": " << v.tlb_flushes
       << ", \"churn_ops\": " << r.churn_ops
       << ", \"instructions\": " << r.instructions
       << ", \"cycles\": " << r.cycles
       << ", \"churn_per_sec\": " << r.churn_per_sec() << "}"
       << (i + 1 < cells.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
  return os.str();
}

}  // namespace sealpk::mpk
