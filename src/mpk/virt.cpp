// Anchor translation unit for repro_mpk.
#include "mpk/key_manager.h"
#include "mpk/virt.h"

namespace sealpk::mpk {
static_assert(hw::kMpkNumPkeys == 16);
}  // namespace sealpk::mpk
