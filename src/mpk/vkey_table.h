// In-kernel pkey virtualization (ROADMAP item 3; DESIGN.md §15): unbounded
// virtual protection keys multiplexed onto the physical key space.
//
// Where KeyVirtualizer (virt.h) is a host-side *cost model* of libmpk, this
// table is the real thing, run by the kernel under the vpkey syscalls: a
// per-process map of virtual keys (ids are monotonic and never reused, so
// the space is unbounded) onto physical pkeys drawn from the process's
// SealPkKeyManager. Using an unmapped vkey evicts the least-recently-used
// mapping and re-keys pages through the *live page tables* — every PTE
// rewrite and TLB shootdown happens for real via the VkeyOps port the
// kernel passes in, not as modelled cycles.
//
// Mechanics (each is a measured axis of the key-churn benchmarks):
//   - Parking: pages of an unmapped vkey are re-keyed to one reserved
//     physical "park" key whose PKR field is permanently no-access, so an
//     evicted domain's pages stay isolated without per-page PTE permission
//     edits.
//   - Grouped/batched mprotect: vpkey_mprotect on an unmapped vkey only
//     records the page group and parks it; the expensive re-key to a
//     physical key is deferred to map-in time, where all of the vkey's
//     groups are rewritten under a single TLB shootdown.
//   - MRU cache: the most-recently-set vkeys are pinned (exempt from
//     eviction) and their permission updates skip the bookkeeping path —
//     the libmpk "pkey cache" the paper's §VI comparison assumes.
//   - Eager vs lazy sync (KernelConfig::vkey_lazy_sync): eager parks a
//     victim's pages at eviction time (one shootdown per eviction); lazy
//     runs the drain queue as a victim cache. Victims keep exclusive
//     ownership of their physical key (its PKR field is no-access, so
//     isolation holds) with their pages not yet parked: when the free pool
//     runs dry the queue is topped up to kVkeyDrainBatch victims (perm-only
//     evictions, zero PTE work) and only the OLDEST half is parked, under
//     one batched shootdown. The younger half stays draining, so a set()
//     that returns to one of them revives the mapping with zero PTE
//     traffic — the paper's lazy de-allocation idea applied to
//     virtualization: amortized shootdowns plus a second chance for
//     recently evicted domains.
//
// Header-only on purpose: the kernel (repro_os) consumes this like
// mpk/key_manager.h, and repro_mpk links repro_os, so an out-of-line
// definition here would cycle the link graph.
#pragma once

#include <algorithm>
#include <list>
#include <map>
#include <vector>

#include "common/bits.h"
#include "common/check.h"
#include "common/serial.h"
#include "os/syscall_abi.h"

namespace sealpk::mpk {

// Virtual key ids start above any physical key number, so a guest can never
// confuse the two ABIs (and a vkey accidentally passed to pkey_mprotect
// fails the physical range check instead of aliasing a real key).
inline constexpr u64 kVkeyBase = 0x10000;

// Lazy sync: when the free pool runs dry the drain queue is topped up to
// this many victims before the oldest half is parked in one shootdown.
inline constexpr u64 kVkeyDrainBatch = 32;

// Side-effect port the kernel passes into every table operation. The table
// owns the *policy* (who is mapped, who drains, who gets evicted); the
// kernel owns the *mechanism* (PTE rewrites through AddressSpace, PKR
// writes, TLB shootdowns, cycle charging). Implementations are stack
// adapters built per syscall — never stored, so snapshots carry no hooks.
class VkeyOps {
 public:
  virtual ~VkeyOps() = default;
  // A fresh physical key from the key manager, or a negative errno when
  // the physical space is exhausted (the table then starts evicting).
  virtual i64 acquire_phys() = 0;
  // Re-keys [addr, addr+len) to `pkey`, keeping `prot`. Returns pages
  // rewritten or a negative errno. Does NOT flush the TLB — the table
  // calls flush_tlb() once per batch.
  virtual i64 rekey(u64 addr, u64 len, u64 prot, u32 pkey) = 0;
  // Writes a physical key's live 2-bit PKR permission.
  virtual void set_perm(u32 pkey, u8 perm) = 0;
  // One TLB shootdown covering every rekey() since the previous flush.
  virtual void flush_tlb() = 0;
  // Observability notifications (default no-ops): the table makes the
  // policy decisions, so only it knows which vkey mapped in, which one was
  // evicted, and how big a drain batch was. The kernel adapter turns these
  // into kVkeyMap / kVkeyEvict / kVkeySync trace events.
  virtual void note_map(u64 vkey, u32 phys, u64 pages) {
    (void)vkey, (void)phys, (void)pages;
  }
  virtual void note_evict(u64 vkey, u32 phys, bool drained) {
    (void)vkey, (void)phys, (void)drained;
  }
  virtual void note_sync(u64 pages, u64 vkeys) { (void)pages, (void)vkeys; }
};

struct VkeyTableConfig {
  u32 mru_slots = 8;      // pinned most-recently-used vkeys (0 = no cache)
  bool lazy_sync = false; // eager (park at eviction) vs lazy (drain queue)
};

// Aggregate churn counters; the canonical benchmark record is derived from
// exactly these (integer-only, deterministic).
struct VkeyStats {
  u64 allocs = 0;
  u64 frees = 0;
  u64 sets = 0;          // vpkey_set calls
  u64 mprotects = 0;     // vpkey_mprotect calls
  u64 map_ins = 0;       // unmapped vkey bound to a physical key
  u64 revivals = 0;      // draining vkey re-mapped with zero PTE work
  u64 mru_hits = 0;      // sets served from the pinned MRU cache
  u64 evictions = 0;     // mappings reclaimed from the LRU tail
  u64 drains = 0;        // vkeys parked out of the drain queue
  u64 drain_flushes = 0; // batched shootdowns that emptied the queue
  u64 pte_rekeys = 0;    // leaf PTEs rewritten on behalf of the table
  u64 tlb_flushes = 0;   // shootdowns issued on behalf of the table

  bool operator==(const VkeyStats&) const = default;
};

enum class VkeyState : u8 {
  kUnmapped = 0,  // no physical key; pages (if any) carry the park key
  kMapped,        // physical key live; pages carry it
  kDraining,      // lazily evicted: still owns its physical key, PKR field
                  // no-access, pages not yet parked
};

// One contiguous page group assigned by vpkey_mprotect.
struct VkeyGroup {
  u64 addr = 0;
  u64 len = 0;
  u64 prot = 0;

  bool operator==(const VkeyGroup&) const = default;
};

struct VkeyEntry {
  VkeyState state = VkeyState::kUnmapped;
  u8 perm = 0;    // last requested 2-bit permission
  u32 phys = 0;   // valid in kMapped / kDraining
  u64 pages = 0;  // total pages across groups
  std::vector<VkeyGroup> groups;
};

// Outcomes of set() — the kernel charges cycles by how much machinery ran.
enum class VkeySetOutcome : u8 {
  kMruHit = 0,   // pinned cache: PKR write only
  kHit,          // mapped: PKR write + LRU touch
  kRevived,      // draining: re-mapped without any PTE traffic
  kMappedIn,     // unmapped: map-in (possibly after eviction/drain)
};

class VkeyTable {
 public:
  explicit VkeyTable(VkeyTableConfig config = {}) : config_(config) {}

  const VkeyTableConfig& config() const { return config_; }
  const VkeyStats& stats() const { return stats_; }
  u64 live() const { return entries_.size(); }
  u64 mapped() const { return lru_.size(); }
  u64 draining() const { return drain_queue_.size(); }
  u32 park_key() const { return park_; }
  const std::map<u64, VkeyEntry>& entries() const { return entries_; }
  const std::vector<u32>& acquired() const { return acquired_; }
  const std::vector<u32>& pool() const { return pool_; }

  // --- vpkey_alloc: metadata only (the physical key is bound lazily) ------
  i64 alloc(u64 flags, u8 init_perm) {
    if (flags != 0 || init_perm > 3) return os::err::kInval;
    const u64 vkey = next_vkey_++;
    VkeyEntry e;
    e.perm = init_perm;
    entries_.emplace(vkey, std::move(e));
    ++stats_.allocs;
    return static_cast<i64>(vkey);
  }

  // --- vpkey_mprotect: record the group; re-key now only if mapped --------
  i64 mprotect(VkeyOps& ops, u64 addr, u64 len, u64 prot, u64 vkey) {
    VkeyEntry* e = find(vkey);
    if (e == nullptr) return os::err::kInval;
    // An unmapped vkey's pages go to the park key (isolated immediately,
    // re-keyed for real at map-in); a draining vkey still exclusively owns
    // its physical key, so new pages may carry it directly.
    u32 target = 0;
    if (e->state == VkeyState::kUnmapped) {
      const i64 rc = ensure_park(ops);
      if (rc < 0) return rc;
      target = park_;
    } else {
      target = e->phys;
    }
    const i64 pages = ops.rekey(addr, len, prot, target);
    if (pages < 0) return pages;
    flush(ops);
    stats_.pte_rekeys += static_cast<u64>(pages);
    e->groups.push_back({addr, len, prot});
    e->pages += static_cast<u64>(pages);
    ++stats_.mprotects;
    if (e->state == VkeyState::kMapped) touch_lru(vkey);
    return 0;
  }

  // --- vpkey_set: permission update, mapping the vkey in if needed --------
  i64 set(VkeyOps& ops, u64 vkey, u8 perm) {
    if (perm > 3) return os::err::kInval;
    VkeyEntry* e = find(vkey);
    if (e == nullptr) return os::err::kInval;
    ++stats_.sets;
    if (e->state == VkeyState::kMapped) {
      if (mru_contains(vkey)) {
        ++stats_.mru_hits;
        ops.set_perm(e->phys, perm);
        e->perm = perm;
        touch_mru(vkey);
        touch_lru(vkey);
        return static_cast<i64>(VkeySetOutcome::kMruHit);
      }
      ops.set_perm(e->phys, perm);
      e->perm = perm;
      touch_lru(vkey);
      touch_mru(vkey);
      return static_cast<i64>(VkeySetOutcome::kHit);
    }
    if (e->state == VkeyState::kDraining) {
      // Lazy revival: the physical key never left this vkey, so remapping
      // is pure bookkeeping — zero PTE traffic. This is the case lazy sync
      // exists for.
      drain_queue_.erase(
          std::find(drain_queue_.begin(), drain_queue_.end(), vkey));
      e->state = VkeyState::kMapped;
      insert_lru(vkey);
      ops.set_perm(e->phys, perm);
      e->perm = perm;
      touch_mru(vkey);
      ++stats_.revivals;
      return static_cast<i64>(VkeySetOutcome::kRevived);
    }
    // Unmapped: bind a physical key and replay every recorded group under
    // one shootdown (the batched-mprotect payoff).
    const i64 phys = take_phys(ops);
    if (phys < 0) return phys;
    e->phys = static_cast<u32>(phys);
    e->state = VkeyState::kMapped;
    for (const VkeyGroup& g : e->groups) {
      const i64 pages = ops.rekey(g.addr, g.len, g.prot, e->phys);
      if (pages >= 0) stats_.pte_rekeys += static_cast<u64>(pages);
    }
    if (!e->groups.empty()) flush(ops);
    insert_lru(vkey);
    ops.set_perm(e->phys, perm);
    e->perm = perm;
    touch_mru(vkey);
    ++stats_.map_ins;
    ops.note_map(vkey, e->phys, e->pages);
    return static_cast<i64>(VkeySetOutcome::kMappedIn);
  }

  // --- vpkey_free: pages return to the default domain ---------------------
  i64 free_vkey(VkeyOps& ops, u64 vkey) {
    VkeyEntry* e = find(vkey);
    if (e == nullptr) return os::err::kInval;
    for (const VkeyGroup& g : e->groups) {
      const i64 pages = ops.rekey(g.addr, g.len, g.prot, 0);
      if (pages >= 0) stats_.pte_rekeys += static_cast<u64>(pages);
    }
    if (!e->groups.empty()) flush(ops);
    switch (e->state) {
      case VkeyState::kMapped:
        remove_lru(vkey);
        remove_mru(vkey);
        release_phys(ops, e->phys);
        break;
      case VkeyState::kDraining:
        drain_queue_.erase(
            std::find(drain_queue_.begin(), drain_queue_.end(), vkey));
        release_phys(ops, e->phys);
        break;
      case VkeyState::kUnmapped:
        break;
    }
    entries_.erase(vkey);
    ++stats_.frees;
    return 0;
  }

  // --- audit / repair ports (MachineAuditor, fault injector) --------------
  // Mutable entry access for the fault injector's table-corruption kind and
  // the auditor's repair path. Policy state (LRU, pool, drain queue) stays
  // private; repair goes through force_phys/rebuild_pool below.
  VkeyEntry* find(u64 vkey) {
    auto it = entries_.find(vkey);
    return it == entries_.end() ? nullptr : &it->second;
  }
  const VkeyEntry* find(u64 vkey) const {
    auto it = entries_.find(vkey);
    return it == entries_.end() ? nullptr : &it->second;
  }

  // Overwrites a vkey's recorded physical key (auditor repair: the leaf
  // PTEs are the ground truth a corrupted table field is rebuilt from).
  void force_phys(u64 vkey, u32 phys) {
    VkeyEntry* e = find(vkey);
    SEALPK_CHECK(e != nullptr);
    e->phys = phys;
  }

  // Recomputes the free pool as acquired − park − {keys owned by mapped or
  // draining vkeys}, in descending order so take order stays deterministic.
  void rebuild_pool() {
    std::vector<u32> in_use;
    for (const auto& [vkey, e] : entries_) {
      if (e.state != VkeyState::kUnmapped) in_use.push_back(e.phys);
    }
    pool_.clear();
    for (const u32 k : acquired_) {
      if (k == park_) continue;
      if (std::find(in_use.begin(), in_use.end(), k) != in_use.end()) {
        continue;
      }
      pool_.push_back(k);
    }
    std::sort(pool_.begin(), pool_.end(), std::greater<u32>());
  }

  // --- snapshot port (VKEY section, format v2) ----------------------------
  void save_state(ByteWriter& w) const {
    w.put_u32(config_.mru_slots);
    w.put_bool(config_.lazy_sync);
    w.put_u64(next_vkey_);
    w.put_u32(park_);
    w.put_u64(entries_.size());
    for (const auto& [vkey, e] : entries_) {
      w.put_u64(vkey);
      w.put_u8(static_cast<u8>(e.state));
      w.put_u8(e.perm);
      w.put_u32(e.phys);
      w.put_u64(e.pages);
      w.put_u64(e.groups.size());
      for (const VkeyGroup& g : e.groups) {
        w.put_u64(g.addr);
        w.put_u64(g.len);
        w.put_u64(g.prot);
      }
    }
    w.put_u64(lru_.size());
    for (const u64 vkey : lru_) w.put_u64(vkey);
    w.put_u64(mru_.size());
    for (const u64 vkey : mru_) w.put_u64(vkey);
    w.put_u64(pool_.size());
    for (const u32 k : pool_) w.put_u32(k);
    w.put_u64(drain_queue_.size());
    for (const u64 vkey : drain_queue_) w.put_u64(vkey);
    w.put_u64(acquired_.size());
    for (const u32 k : acquired_) w.put_u32(k);
    w.put_u64(stats_.allocs);
    w.put_u64(stats_.frees);
    w.put_u64(stats_.sets);
    w.put_u64(stats_.mprotects);
    w.put_u64(stats_.map_ins);
    w.put_u64(stats_.revivals);
    w.put_u64(stats_.mru_hits);
    w.put_u64(stats_.evictions);
    w.put_u64(stats_.drains);
    w.put_u64(stats_.drain_flushes);
    w.put_u64(stats_.pte_rekeys);
    w.put_u64(stats_.tlb_flushes);
  }

  void load_state(ByteReader& r) {
    entries_.clear();
    lru_.clear();
    mru_.clear();
    pool_.clear();
    drain_queue_.clear();
    acquired_.clear();
    config_.mru_slots = r.get_u32();
    config_.lazy_sync = r.get_bool();
    next_vkey_ = r.get_u64();
    park_ = r.get_u32();
    const u64 n = r.get_u64();
    for (u64 i = 0; i < n; ++i) {
      const u64 vkey = r.get_u64();
      VkeyEntry e;
      e.state = static_cast<VkeyState>(r.get_u8());
      e.perm = r.get_u8();
      e.phys = r.get_u32();
      e.pages = r.get_u64();
      e.groups.resize(r.get_u64());
      for (VkeyGroup& g : e.groups) {
        g.addr = r.get_u64();
        g.len = r.get_u64();
        g.prot = r.get_u64();
      }
      entries_.emplace(vkey, std::move(e));
    }
    const u64 lru_n = r.get_u64();
    for (u64 i = 0; i < lru_n; ++i) lru_.push_back(r.get_u64());
    mru_.resize(r.get_u64());
    for (u64& vkey : mru_) vkey = r.get_u64();
    pool_.resize(r.get_u64());
    for (u32& k : pool_) k = r.get_u32();
    drain_queue_.resize(r.get_u64());
    for (u64& vkey : drain_queue_) vkey = r.get_u64();
    acquired_.resize(r.get_u64());
    for (u32& k : acquired_) k = r.get_u32();
    stats_.allocs = r.get_u64();
    stats_.frees = r.get_u64();
    stats_.sets = r.get_u64();
    stats_.mprotects = r.get_u64();
    stats_.map_ins = r.get_u64();
    stats_.revivals = r.get_u64();
    stats_.mru_hits = r.get_u64();
    stats_.evictions = r.get_u64();
    stats_.drains = r.get_u64();
    stats_.drain_flushes = r.get_u64();
    stats_.pte_rekeys = r.get_u64();
    stats_.tlb_flushes = r.get_u64();
  }

 private:
  void flush(VkeyOps& ops) {
    ops.flush_tlb();
    ++stats_.tlb_flushes;
  }

  i64 ensure_park(VkeyOps& ops) {
    if (park_ != 0) return 0;
    const i64 k = ops.acquire_phys();
    if (k < 0) return k;
    park_ = static_cast<u32>(k);
    acquired_.push_back(park_);
    ops.set_perm(park_, 0b11);  // permanently no-access
    return 0;
  }

  // A physical key for a map-in: pool, then the key manager, then (pool
  // exhausted for real) the eviction path.
  i64 take_phys(VkeyOps& ops) {
    // The park key must exist before the first mapping: eviction parks
    // pages, and acquiring it *after* the space is exhausted would fail.
    const i64 prc = ensure_park(ops);
    if (prc < 0) return prc;
    if (!pool_.empty()) {
      const u32 k = pool_.back();
      pool_.pop_back();
      return k;
    }
    const i64 fresh = ops.acquire_phys();
    if (fresh >= 0) {
      acquired_.push_back(static_cast<u32>(fresh));
      return fresh;
    }
    if (config_.lazy_sync) {
      // Victim cache: top the queue up to the batch size (perm-only
      // evictions, no PTE work yet), then park only the oldest half under
      // one shootdown. The younger half keeps draining, so a set() on one
      // of those revives with zero PTE traffic, and each shootdown
      // amortizes over ~kVkeyDrainBatch/2 victims.
      while (drain_queue_.size() < kVkeyDrainBatch) {
        if (evict_to_drain(ops) < 0) break;
      }
      if (drain_queue_.empty()) return os::err::kNoSpc;
      drain_front(ops, (drain_queue_.size() + 1) / 2);
      SEALPK_CHECK(!pool_.empty());
      const u32 k = pool_.back();
      pool_.pop_back();
      return k;
    }
    return evict_eager(ops);
  }

  void release_phys(VkeyOps& ops, u32 phys) {
    ops.set_perm(phys, 0b11);
    pool_.push_back(phys);
  }

  // The LRU victim, skipping MRU-pinned vkeys when possible.
  u64 pick_victim() const {
    SEALPK_CHECK(!lru_.empty());
    for (auto it = lru_.rbegin(); it != lru_.rend(); ++it) {
      if (!mru_contains(*it)) return *it;
    }
    return lru_.back();  // everything pinned: evict the LRU tail anyway
  }

  // Eager eviction: park the victim's pages now, return its key.
  i64 evict_eager(VkeyOps& ops) {
    if (lru_.empty()) return os::err::kNoSpc;
    const u64 victim = pick_victim();
    VkeyEntry* v = find(victim);
    SEALPK_CHECK(v != nullptr && v->state == VkeyState::kMapped);
    remove_lru(victim);
    remove_mru(victim);
    const u32 phys = v->phys;
    ops.set_perm(phys, 0b11);
    for (const VkeyGroup& g : v->groups) {
      const i64 pages = ops.rekey(g.addr, g.len, g.prot, park_);
      if (pages >= 0) stats_.pte_rekeys += static_cast<u64>(pages);
    }
    if (!v->groups.empty()) flush(ops);
    v->state = VkeyState::kUnmapped;
    v->phys = 0;
    ++stats_.evictions;
    ops.note_evict(victim, phys, /*drained=*/false);
    return phys;
  }

  // Lazy eviction: the victim keeps its key (no-access) on the drain queue.
  i64 evict_to_drain(VkeyOps& ops) {
    if (lru_.empty()) return os::err::kNoSpc;
    const u64 victim = pick_victim();
    VkeyEntry* v = find(victim);
    SEALPK_CHECK(v != nullptr && v->state == VkeyState::kMapped);
    remove_lru(victim);
    remove_mru(victim);
    ops.set_perm(v->phys, 0b11);
    v->state = VkeyState::kDraining;
    drain_queue_.push_back(victim);
    ++stats_.evictions;
    ops.note_evict(victim, v->phys, /*drained=*/true);
    return 0;
  }

  // Parks the `n` oldest drained vkeys' pages under ONE shootdown and
  // refills the pool with their keys — the batched PTE traffic lazy sync
  // buys. Younger queue members keep draining as revival candidates.
  void drain_front(VkeyOps& ops, u64 n) {
    n = std::min<u64>(n, drain_queue_.size());
    if (n == 0) return;
    u64 batch_pages = 0;
    for (u64 i = 0; i < n; ++i) {
      const u64 vkey = drain_queue_[i];
      VkeyEntry* e = find(vkey);
      SEALPK_CHECK(e != nullptr && e->state == VkeyState::kDraining);
      for (const VkeyGroup& g : e->groups) {
        const i64 pages = ops.rekey(g.addr, g.len, g.prot, park_);
        if (pages >= 0) {
          stats_.pte_rekeys += static_cast<u64>(pages);
          batch_pages += static_cast<u64>(pages);
        }
      }
      e->state = VkeyState::kUnmapped;
      pool_.push_back(e->phys);
      e->phys = 0;
      ++stats_.drains;
    }
    drain_queue_.erase(drain_queue_.begin(),
                       drain_queue_.begin() + static_cast<ptrdiff_t>(n));
    if (batch_pages != 0) flush(ops);
    ++stats_.drain_flushes;
    ops.note_sync(batch_pages, n);
  }

  // --- LRU / MRU bookkeeping ----------------------------------------------
  void insert_lru(u64 vkey) { lru_.push_front(vkey); }
  void touch_lru(u64 vkey) {
    auto it = std::find(lru_.begin(), lru_.end(), vkey);
    SEALPK_CHECK(it != lru_.end());
    lru_.erase(it);
    lru_.push_front(vkey);
  }
  void remove_lru(u64 vkey) {
    auto it = std::find(lru_.begin(), lru_.end(), vkey);
    SEALPK_CHECK(it != lru_.end());
    lru_.erase(it);
  }
  bool mru_contains(u64 vkey) const {
    return std::find(mru_.begin(), mru_.end(), vkey) != mru_.end();
  }
  void touch_mru(u64 vkey) {
    auto it = std::find(mru_.begin(), mru_.end(), vkey);
    if (it != mru_.end()) mru_.erase(it);
    mru_.insert(mru_.begin(), vkey);
    if (mru_.size() > config_.mru_slots) mru_.resize(config_.mru_slots);
  }
  void remove_mru(u64 vkey) {
    auto it = std::find(mru_.begin(), mru_.end(), vkey);
    if (it != mru_.end()) mru_.erase(it);
  }

  VkeyTableConfig config_;
  std::map<u64, VkeyEntry> entries_;  // ordered: canonical serialization
  std::list<u64> lru_;                // mapped vkeys, front = most recent
  std::vector<u64> mru_;              // pinned cache, front = most recent
  std::vector<u32> pool_;             // free acquired physical keys (stack)
  std::vector<u64> drain_queue_;      // lazily evicted vkeys, FIFO
  std::vector<u32> acquired_;         // every physical key ever acquired
  u32 park_ = 0;                      // 0 = not yet acquired
  u64 next_vkey_ = kVkeyBase;
  VkeyStats stats_;
};

}  // namespace sealpk::mpk
