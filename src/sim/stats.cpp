#include "sim/stats.h"

#include <iomanip>

namespace sealpk::sim {

MachineStats collect_stats(Machine& machine) {
  MachineStats s;
  auto& hart = machine.hart();
  s.instructions = hart.instret();
  s.cycles = hart.cycles();
  s.loads = hart.stats().loads;
  s.stores = hart.stats().stores;
  s.calls = hart.stats().calls;
  s.traps = hart.stats().traps;
  s.pkey_denials = hart.stats().pkey_denials;
  s.rdpkr = hart.stats().rdpkr_count;
  s.wrpkr = hart.stats().wrpkr_count;
  s.dtlb = hart.dtlb().stats();
  s.itlb = hart.itlb().stats();
  s.pkr = hart.pkr().stats();
  s.seal = hart.seal_unit().stats();
  const auto& k = machine.kernel().stats();
  s.syscalls = k.syscalls;
  s.context_switches = k.context_switches;
  s.page_faults = k.page_faults;
  s.cam_refills = k.cam_refills;
  s.seal_violations = k.seal_violations;
  s.pte_pages_updated = k.pte_pages_updated;
  s.faults_injected =
      machine.injector() != nullptr ? machine.injector()->total_injected() : 0;
  s.recoveries = k.recoveries();
  s.machine_checks = k.machine_checks;
  s.machine_check_kills = k.machine_check_kills;
  s.watchdog_kills = k.watchdog_kills;
  s.audit_runs = k.audit_runs;
  s.audit_findings = k.audit_findings;
  s.host_errors_contained = k.host_errors_contained;
  s.checkpoints = machine.checkpoints_taken();
  s.rollbacks = machine.rollbacks();
  s.rollback_failures = machine.rollback_failures();
  return s;
}

void print_stats(const MachineStats& s, std::ostream& os) {
  os << "machine statistics\n";
  os << "  instructions      " << s.instructions << "\n";
  os << "  cycles            " << s.cycles << "  (IPC "
     << std::fixed << std::setprecision(3) << s.ipc() << ")\n";
  os << "  loads/stores      " << s.loads << " / " << s.stores << "\n";
  os << "  calls             " << s.calls << "\n";
  os << "  traps             " << s.traps << "  (syscalls " << s.syscalls
     << ", page faults " << s.page_faults << ")\n";
  os << "  dtlb hit rate     " << std::setprecision(4)
     << 100.0 * s.dtlb_hit_rate() << "%  (" << s.dtlb.hits << " hits, "
     << s.dtlb.misses << " misses, " << s.dtlb.flushes << " flushes)\n";
  os << "  itlb hit rate     " << 100.0 * s.itlb_hit_rate() << "%  ("
     << s.itlb.hits << " hits, " << s.itlb.misses << " misses)\n";
  os << "  pkr ports         " << s.pkr.perm_lookups << " perm lookups, "
     << s.pkr.row_reads << " row reads, " << s.pkr.row_writes
     << " row writes\n";
  os << "  rdpkr/wrpkr       " << s.rdpkr << " / " << s.wrpkr << "\n";
  os << "  seal checks       " << s.seal.checks << "  (cam hits "
     << s.seal.cam_hits << ", misses " << s.seal.cam_misses
     << ", refills " << s.cam_refills << ", violations "
     << s.seal_violations << ")\n";
  os << "  pkey denials      " << s.pkey_denials << "\n";
  os << "  context switches  " << s.context_switches << "\n";
  os << "  pte updates       " << s.pte_pages_updated << " pages\n";
  // Robustness block only when something robustness-related actually
  // happened — a clean run (even one that scheduled audits which all came
  // back empty) keeps its report short.
  if (s.faults_injected != 0 || s.audit_findings != 0 ||
      s.machine_checks != 0 || s.machine_check_kills != 0 ||
      s.watchdog_kills != 0 || s.recoveries != 0 ||
      s.host_errors_contained != 0) {
    os << "  faults injected   " << s.faults_injected << "  (recoveries "
       << s.recoveries << ", machine checks " << s.machine_checks
       << ", kills " << s.machine_check_kills + s.watchdog_kills << ")\n";
    os << "  audits            " << s.audit_runs << " runs, "
       << s.audit_findings << " findings, " << s.host_errors_contained
       << " host errors contained\n";
  }
  if (s.checkpoints != 0 || s.rollbacks != 0 || s.rollback_failures != 0) {
    os << "  checkpoints       " << s.checkpoints << "  (rollbacks "
       << s.rollbacks << ", rollback failures " << s.rollback_failures
       << ")\n";
  }
}

}  // namespace sealpk::sim
