// Execution tracing: attach to a Machine's hart and collect or print a
// disassembled instruction stream — the spike-style `-l` log for debugging
// guest programs and instrumentation passes.
#pragma once

#include <deque>
#include <ostream>
#include <string>

#include "sim/machine.h"

namespace sealpk::sim {

struct TraceEntry {
  core::Priv priv;
  u64 pc;
  isa::Inst inst;
};

// Ring-buffer tracer: keeps the last `capacity` executed instructions.
// Attach/detach at will; detaching restores the hart's zero-overhead path.
class Tracer {
 public:
  explicit Tracer(u64 capacity = 64) : capacity_(capacity) {}

  void attach(core::Hart& hart) {
    hart.set_trace_hook(
        [this](core::Priv priv, u64 pc, const isa::Inst& inst) {
          if (entries_.size() == capacity_) entries_.pop_front();
          entries_.push_back({priv, pc, inst});
          ++executed_;
        });
  }

  static void detach(core::Hart& hart) { hart.set_trace_hook(nullptr); }

  const std::deque<TraceEntry>& entries() const { return entries_; }
  u64 executed() const { return executed_; }
  void clear() {
    entries_.clear();
    executed_ = 0;
  }

  // Renders the buffer, one "priv pc: disasm" line per instruction.
  void dump(std::ostream& os) const;

 private:
  const u64 capacity_;
  u64 executed_ = 0;
  std::deque<TraceEntry> entries_;
};

// Streaming tracer: prints every instruction as it executes (verbose; for
// short repros).
void attach_stream_tracer(core::Hart& hart, std::ostream& os);

}  // namespace sealpk::sim
