// Machine — the facade wiring DRAM + hart + kernel into the equivalent of
// the paper's FPGA board (Rocket + SealPK + Linux). This is the main entry
// point of the public API: load a linked guest image and run it.
//
// Robustness layer: the machine optionally carries a seeded FaultInjector
// (MachineConfig::fault_plan) that corrupts PKR/TLB/PTE/CAM state while the
// guest runs, a MachineAuditor that cross-checks hardware state against the
// kernel's software truth every `audit_interval` instructions, and a
// run-loop watchdog that converts same-PC trap storms and zero-retirement
// livelock into process kills with distinct exit codes. Host exceptions
// (CheckError etc.) never escape run(): they are contained as modelled
// machine checks against the offending process.
#pragma once

#include <limits>
#include <memory>

#include "analysis/verifier.h"
#include "core/hart.h"
#include "fault/auditor.h"
#include "fault/fault.h"
#include "isa/program.h"
#include "mem/phys_mem.h"
#include "os/kernel.h"

namespace sealpk::sim {

struct MachineConfig {
  core::HartConfig hart;
  os::KernelConfig kernel;
  u64 mem_bytes = 256 * 1024 * 1024;  // the paper's Zedboard has 256 MiB
  // Timer-preemption quantum in instructions (0 disables preemption; the
  // scheduler then only switches on sched_yield / exit).
  u64 preempt_quantum = 50'000;
  // Static-verification loader gate (src/analysis): kOff admits anything
  // (legacy behaviour), kWarn records the report but still admits, kEnforce
  // refuses images with error-severity findings. The report of the last
  // load() is available via verify_report().
  analysis::LoadVerifyPolicy verify_policy = analysis::LoadVerifyPolicy::kOff;
  analysis::VerifyOptions verify_options;

  // --- robustness ----------------------------------------------------------
  // Seeded fault injection (disabled by default: fault_plan.enabled).
  fault::FaultPlan fault_plan;
  // MachineAuditor cadence in retired instructions. 0 = automatic: audit
  // every kDefaultAuditInterval instructions when fault injection is on,
  // never otherwise (keeping injection-disabled runs byte-identical).
  u64 audit_interval = 0;
  // Watchdog thresholds (0 disables the respective check): consecutive
  // traps pinned to one PC, and consecutive steps retiring nothing.
  u64 watchdog_trap_storm = 64;
  u64 watchdog_livelock = 4096;
};

struct RunOutcome {
  bool completed = false;  // every loaded process exited
  u64 instructions = 0;    // retired during this run() call
  u64 cycles = 0;          // simulated cycles elapsed during this run()
};

class Machine {
 public:
  static constexpr u64 kDefaultAuditInterval = 10'000;

  explicit Machine(const MachineConfig& config = {})
      : config_(config),
        mem_(config.mem_bytes),
        hart_(mem_, config.hart),
        kernel_(hart_, wired_kernel_config()) {
    if (config_.fault_plan.enabled) {
      injector_ = std::make_unique<fault::FaultInjector>(config_.fault_plan);
    }
    auditor_ = std::make_unique<fault::MachineAuditor>(hart_, kernel_);
  }

  // Loads a linked image as a new process; returns the pid, or kLoadRefused
  // when the verify policy (or the kernel's own admission gate) rejects it.
  static constexpr int kLoadRefused = os::Kernel::kLoadRefused;
  int load(const isa::Image& image);

  // Findings of the most recent load() under kWarn/kEnforce (empty under
  // kOff or when no load has happened yet).
  const analysis::Report& verify_report() const { return verify_report_; }

  // Runs until every process exits or `max_instructions` retire.
  RunOutcome run(u64 max_instructions = 4'000'000'000ULL);

  core::Hart& hart() { return hart_; }
  os::Kernel& kernel() { return kernel_; }
  mem::PhysMem& mem() { return mem_; }
  const MachineConfig& config() const { return config_; }

  // nullptr when fault injection is disabled.
  fault::FaultInjector* injector() { return injector_.get(); }
  fault::MachineAuditor& auditor() { return *auditor_; }

  // Sentinel returned by exit_code() for a pid that never existed — callers
  // probing unknown pids get this instead of a host exception.
  static constexpr i64 kNoExitCode = std::numeric_limits<i64>::min();
  bool has_process(int pid) const { return kernel_.has_process(pid); }
  i64 exit_code(int pid) const {
    return kernel_.has_process(pid) ? kernel_.process(pid).exit_code
                                    : kNoExitCode;
  }

 private:
  // The kernel's config is derived from ours: the CAM-refill fault hooks
  // close over `this` so they can consult the injector created afterwards.
  os::KernelConfig wired_kernel_config() {
    os::KernelConfig cfg = config_.kernel;
    if (config_.fault_plan.enabled) {
      cfg.cam_refill_drop = [this] {
        return injector_ != nullptr && injector_->should_drop_refill(hart_);
      };
      cfg.cam_refill_dup = [this] {
        return injector_ != nullptr && injector_->should_dup_refill(hart_);
      };
    }
    return cfg;
  }

  MachineConfig config_;
  mem::PhysMem mem_;
  core::Hart hart_;
  os::Kernel kernel_;
  std::unique_ptr<fault::FaultInjector> injector_;
  std::unique_ptr<fault::MachineAuditor> auditor_;
  analysis::Report verify_report_;
};

}  // namespace sealpk::sim
