// Machine — the facade wiring DRAM + hart + kernel into the equivalent of
// the paper's FPGA board (Rocket + SealPK + Linux). This is the main entry
// point of the public API: load a linked guest image and run it.
//
// Robustness layer: the machine optionally carries a seeded FaultInjector
// (MachineConfig::fault_plan) that corrupts PKR/TLB/PTE/CAM state while the
// guest runs, a MachineAuditor that cross-checks hardware state against the
// kernel's software truth every `audit_interval` instructions, and a
// run-loop watchdog that converts same-PC trap storms and zero-retirement
// livelock into process kills with distinct exit codes. Host exceptions
// (CheckError etc.) never escape run(): they are contained as modelled
// machine checks against the offending process.
#pragma once

#include <limits>
#include <memory>
#include <vector>

#include "analysis/verifier.h"
#include "core/hart.h"
#include "fault/auditor.h"
#include "fault/fault.h"
#include "isa/program.h"
#include "mem/phys_mem.h"
#include "os/kernel.h"

namespace sealpk::sim {

struct MachineConfig {
  core::HartConfig hart;
  os::KernelConfig kernel;
  u64 mem_bytes = 256 * 1024 * 1024;  // the paper's Zedboard has 256 MiB
  // Timer-preemption quantum in instructions (0 disables preemption; the
  // scheduler then only switches on sched_yield / exit).
  u64 preempt_quantum = 50'000;
  // Static-verification loader gate (src/analysis): kOff admits anything
  // (legacy behaviour), kWarn records the report but still admits, kEnforce
  // refuses images with error-severity findings. The report of the last
  // load() is available via verify_report().
  analysis::LoadVerifyPolicy verify_policy = analysis::LoadVerifyPolicy::kOff;
  analysis::VerifyOptions verify_options;

  // --- robustness ----------------------------------------------------------
  // Seeded fault injection (disabled by default: fault_plan.enabled).
  fault::FaultPlan fault_plan;
  // MachineAuditor cadence in retired instructions. 0 = automatic: audit
  // every kDefaultAuditInterval instructions when fault injection is on,
  // never otherwise (keeping injection-disabled runs byte-identical).
  u64 audit_interval = 0;
  // Watchdog thresholds (0 disables the respective check): consecutive
  // traps pinned to one PC, and consecutive steps retiring nothing.
  u64 watchdog_trap_storm = 64;
  u64 watchdog_livelock = 4096;

  // --- checkpoint / rollback ----------------------------------------------
  // Periodic in-memory checkpoint cadence in retired instructions (0 = no
  // checkpointing). A checkpoint is a full snapshot-format serialization of
  // the machine, taken only when a peek-only audit comes back clean so the
  // saved state is known-good.
  u64 checkpoint_interval = 0;
  // Maximum snapshot rollbacks per machine before an unrecoverable machine
  // check falls through to the existing kExitMachineCheck kill (the cap
  // contains permanently-corrupting fault plans and rollback storms).
  u64 max_rollbacks = 3;

  // --- observability (src/obs) ---------------------------------------------
  // Off by default: publishers then sit on the same null-check fast path as
  // the trace hook. Emits charge no modelled cycles and never touch
  // architectural state, so enabling tracing cannot change a run's
  // instructions, cycles or snapshots (guarded by the golden-compat test).
  // Deliberately NOT serialized into snapshots: the CFG section's byte
  // format is frozen by the v1 golden file, and a restored machine decides
  // its own tracing independently of how the snapshot was recorded.
  obs::TraceConfig trace;
};

struct RunOutcome {
  bool completed = false;  // every loaded process exited
  u64 instructions = 0;    // retired during this run() call
  u64 cycles = 0;          // simulated cycles elapsed during this run()
};

class Machine {
 public:
  static constexpr u64 kDefaultAuditInterval = 10'000;

  explicit Machine(const MachineConfig& config = {})
      : config_(config),
        mem_(config.mem_bytes),
        hart_(mem_, config.hart),
        kernel_(hart_, wired_kernel_config()) {
    if (config_.fault_plan.enabled) {
      injector_ = std::make_unique<fault::FaultInjector>(config_.fault_plan);
    }
    auditor_ = std::make_unique<fault::MachineAuditor>(hart_, kernel_);
    if (config_.trace.enabled) {
      recorder_ = std::make_unique<obs::Recorder>(config_.trace);
      hart_.set_recorder(recorder_.get());
      kernel_.set_recorder(recorder_.get());
      if (injector_ != nullptr) injector_->set_recorder(recorder_.get());
    }
  }

  // Loads a linked image as a new process; returns the pid, or kLoadRefused
  // when the verify policy (or the kernel's own admission gate) rejects it.
  static constexpr int kLoadRefused = os::Kernel::kLoadRefused;
  int load(const isa::Image& image);

  // Findings of the most recent load() under kWarn/kEnforce (empty under
  // kOff or when no load has happened yet).
  const analysis::Report& verify_report() const { return verify_report_; }

  // Runs until every process exits or `max_instructions` retire.
  RunOutcome run(u64 max_instructions = 4'000'000'000ULL);

  core::Hart& hart() { return hart_; }
  os::Kernel& kernel() { return kernel_; }
  mem::PhysMem& mem() { return mem_; }
  const MachineConfig& config() const { return config_; }

  // nullptr when fault injection is disabled.
  fault::FaultInjector* injector() { return injector_.get(); }
  fault::MachineAuditor& auditor() { return *auditor_; }

  // nullptr when tracing is disabled (MachineConfig::trace.enabled).
  obs::Recorder* recorder() { return recorder_.get(); }

  // Called by snapshot::restore after the kernel's scheduling state has
  // been loaded: the recorder's pid/tid stamping context arrives out of
  // band (it is not part of the snapshot), so re-seed it here. A no-op
  // without a recorder. Events published after this point stamp exactly as
  // they would have in an uninterrupted traced run.
  void reseed_recorder() {
    if (recorder_ == nullptr) return;
    if (kernel_.has_current_thread()) {
      const int tid = kernel_.current_tid();
      recorder_->seed_context(
          static_cast<u32>(kernel_.thread(tid).pid), static_cast<u32>(tid));
    }
  }

  // Sentinel returned by exit_code() for a pid that never existed — callers
  // probing unknown pids get this instead of a host exception.
  static constexpr i64 kNoExitCode = std::numeric_limits<i64>::min();
  bool has_process(int pid) const { return kernel_.has_process(pid); }
  i64 exit_code(int pid) const {
    return kernel_.has_process(pid) ? kernel_.process(pid).exit_code
                                    : kNoExitCode;
  }

  // --- checkpoint / rollback ----------------------------------------------
  // Run-loop state that must survive a save/restore for the resumed
  // execution to be bit-identical to an uninterrupted one: preemption and
  // watchdog streaks plus the audit/checkpoint schedules. next_audit == 0
  // means "not yet scheduled" (run() initialises it lazily), so a freshly
  // constructed machine and a restored one take the same path.
  struct RunLoopState {
    u64 since_switch = 0;
    u64 trap_streak = 0;
    u64 last_trap_pc = ~u64{0};
    u64 stall_streak = 0;
    u64 next_audit = 0;
    u64 next_checkpoint = 0;
  };
  RunLoopState& runloop() { return runloop_; }
  const RunLoopState& runloop() const { return runloop_; }

  u64 checkpoints_taken() const { return checkpoints_; }
  u64 rollbacks() const { return rollbacks_; }
  u64 rollback_failures() const { return rollback_failures_; }
  bool has_checkpoint() const { return !checkpoint_.empty(); }
  const std::vector<u8>& checkpoint_blob() const { return checkpoint_; }

 private:
  // The kernel's config is derived from ours: the CAM-refill fault hooks
  // close over `this` so they can consult the injector created afterwards,
  // and the machine-check escalation hook routes unrecoverable corruption
  // into snapshot rollback before the kill.
  os::KernelConfig wired_kernel_config() {
    os::KernelConfig cfg = config_.kernel;
    if (config_.fault_plan.enabled) {
      cfg.cam_refill_drop = [this] {
        return injector_ != nullptr && injector_->should_drop_refill(hart_);
      };
      cfg.cam_refill_dup = [this] {
        return injector_ != nullptr && injector_->should_dup_refill(hart_);
      };
    }
    if (config_.checkpoint_interval != 0) {
      cfg.machine_check_escalation = [this] { return request_rollback(); };
    }
    return cfg;
  }

  // Serializes the machine into checkpoint_ (only when a peek-only audit is
  // clean, so the checkpoint never freezes latent corruption).
  void take_checkpoint();
  // Consulted by the kernel's machine-check kill path: returns true when a
  // rollback is possible and arms it (the restore happens once the trap
  // handling has unwound back to the run loop).
  bool request_rollback();
  void perform_rollback();

  MachineConfig config_;
  mem::PhysMem mem_;
  core::Hart hart_;
  os::Kernel kernel_;
  std::unique_ptr<fault::FaultInjector> injector_;
  std::unique_ptr<fault::MachineAuditor> auditor_;
  std::unique_ptr<obs::Recorder> recorder_;
  analysis::Report verify_report_;
  RunLoopState runloop_;

  std::vector<u8> checkpoint_;     // last known-good snapshot (empty = none)
  u64 checkpoint_injected_ = 0;    // injector lifetime count at checkpoint
  u64 checkpoints_ = 0;
  u64 rollbacks_ = 0;
  u64 rollback_failures_ = 0;
  bool rollback_pending_ = false;
  bool in_final_ = false;  // final reckoning: rollback no longer allowed
};

}  // namespace sealpk::sim
