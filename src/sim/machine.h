// Machine — the facade wiring DRAM + hart + kernel into the equivalent of
// the paper's FPGA board (Rocket + SealPK + Linux). This is the main entry
// point of the public API: load a linked guest image and run it.
#pragma once

#include "analysis/verifier.h"
#include "core/hart.h"
#include "isa/program.h"
#include "mem/phys_mem.h"
#include "os/kernel.h"

namespace sealpk::sim {

struct MachineConfig {
  core::HartConfig hart;
  os::KernelConfig kernel;
  u64 mem_bytes = 256 * 1024 * 1024;  // the paper's Zedboard has 256 MiB
  // Timer-preemption quantum in instructions (0 disables preemption; the
  // scheduler then only switches on sched_yield / exit).
  u64 preempt_quantum = 50'000;
  // Static-verification loader gate (src/analysis): kOff admits anything
  // (legacy behaviour), kWarn records the report but still admits, kEnforce
  // refuses images with error-severity findings. The report of the last
  // load() is available via verify_report().
  analysis::LoadVerifyPolicy verify_policy = analysis::LoadVerifyPolicy::kOff;
  analysis::VerifyOptions verify_options;
};

struct RunOutcome {
  bool completed = false;  // every loaded process exited
  u64 instructions = 0;    // retired during this run() call
  u64 cycles = 0;          // simulated cycles elapsed during this run()
};

class Machine {
 public:
  explicit Machine(const MachineConfig& config = {})
      : config_(config),
        mem_(config.mem_bytes),
        hart_(mem_, config.hart),
        kernel_(hart_, config.kernel) {}

  // Loads a linked image as a new process; returns the pid, or kLoadRefused
  // when the verify policy (or the kernel's own admission gate) rejects it.
  static constexpr int kLoadRefused = os::Kernel::kLoadRefused;
  int load(const isa::Image& image);

  // Findings of the most recent load() under kWarn/kEnforce (empty under
  // kOff or when no load has happened yet).
  const analysis::Report& verify_report() const { return verify_report_; }

  // Runs until every process exits or `max_instructions` retire.
  RunOutcome run(u64 max_instructions = 4'000'000'000ULL);

  core::Hart& hart() { return hart_; }
  os::Kernel& kernel() { return kernel_; }
  mem::PhysMem& mem() { return mem_; }
  const MachineConfig& config() const { return config_; }

  i64 exit_code(int pid) { return kernel_.process(pid).exit_code; }

 private:
  MachineConfig config_;
  mem::PhysMem mem_;
  core::Hart hart_;
  os::Kernel kernel_;
  analysis::Report verify_report_;
};

}  // namespace sealpk::sim
