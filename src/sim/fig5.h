// Shared driver for the Figure-5 experiment: runs a benchmark proxy under
// a shadow-stack variant on a fresh machine and reports simulated cycles.
// Used by bench_fig5_shadowstack and by the regression tests that pin the
// figure's shape.
#pragma once

#include <optional>
#include <vector>

#include "passes/shadow_stack.h"
#include "sim/machine.h"
#include "workloads/workload.h"

namespace sealpk::sim {

struct VariantResult {
  passes::ShadowStackKind kind;
  u64 cycles = 0;
  u64 instructions = 0;
  u64 calls = 0;          // jal/jalr-with-ra retired
  u64 pages_mapped = 0;   // resident set at exit
};

struct Fig5Row {
  const wl::Workload* workload = nullptr;
  VariantResult baseline;  // uninstrumented run (kind = kNone)
  u64 baseline_cycles = 0;
  // In Figure 5 legend order: Inline, Func, SealPK-WR, SealPK-RD+WR,
  // mprotect.
  std::vector<VariantResult> variants;

  double overhead_pct(size_t variant_idx) const {
    const double base = static_cast<double>(baseline_cycles);
    const double v = static_cast<double>(variants[variant_idx].cycles);
    return 100.0 * (v - base) / base;
  }
};

inline constexpr passes::ShadowStackKind kFig5Variants[] = {
    passes::ShadowStackKind::kInline,
    passes::ShadowStackKind::kFunc,
    passes::ShadowStackKind::kSealPkWr,
    passes::ShadowStackKind::kSealPkRdWr,
    passes::ShadowStackKind::kMprotect,
};
inline constexpr size_t kNumFig5Variants = 5;
inline constexpr size_t kSealPkRdWrIdx = 3;
inline constexpr size_t kMprotectIdx = 4;

// Runs one (workload, variant) cell; verifies the checksum against the
// golden model and throws CheckError on mismatch. scale defaults to the
// workload's bench_scale.
VariantResult run_cell(const wl::Workload& workload,
                       passes::ShadowStackKind kind,
                       std::optional<u64> scale = std::nullopt);

// Runs the full figure (all 17 workloads x baseline + 5 variants) through
// the fleet batch engine. `threads` sizes the worker pool (1 = serial on
// the calling thread; 0 = one worker per host hardware thread). Per-cell
// results are bit-identical for every thread count: each cell runs on a
// private Machine from a fully-pinned job spec, and linked images are
// shared read-only via the fleet image cache (one build per workload x
// variant instead of one per cell).
std::vector<Fig5Row> run_figure5(std::optional<u64> scale = std::nullopt,
                                 bool verbose = false, unsigned threads = 1);

// Geometric mean of the per-workload overheads of `variant_idx` across the
// rows of one suite.
double suite_gmean_overhead(const std::vector<Fig5Row>& rows,
                            wl::Suite suite, size_t variant_idx);

// The paper's headline: geomean over the three suites of
// (mprotect overhead / SealPK-RD+WR overhead) — "~88x faster".
double mprotect_speedup_factor(const std::vector<Fig5Row>& rows);

}  // namespace sealpk::sim
