// Aggregated machine statistics: one call collects hart, TLB, PKR,
// seal-unit and kernel counters into a plain struct (for programmatic use)
// or a formatted report (for humans).
#pragma once

#include <ostream>

#include "sim/machine.h"

namespace sealpk::sim {

struct MachineStats {
  // hart
  u64 instructions = 0;
  u64 cycles = 0;
  u64 loads = 0;
  u64 stores = 0;
  u64 calls = 0;
  u64 traps = 0;
  u64 pkey_denials = 0;
  u64 rdpkr = 0;
  u64 wrpkr = 0;
  // TLBs
  mem::TlbStats dtlb;
  mem::TlbStats itlb;
  // SealPK units
  hw::PkrStats pkr;
  hw::SealUnitStats seal;
  // kernel
  u64 syscalls = 0;
  u64 context_switches = 0;
  u64 page_faults = 0;
  u64 cam_refills = 0;
  u64 seal_violations = 0;
  u64 pte_pages_updated = 0;
  // robustness (zero in injection-disabled runs)
  u64 faults_injected = 0;
  u64 recoveries = 0;
  u64 machine_checks = 0;
  u64 machine_check_kills = 0;
  u64 watchdog_kills = 0;
  u64 audit_runs = 0;
  u64 audit_findings = 0;
  u64 host_errors_contained = 0;
  // checkpoint / rollback (zero when checkpointing is off)
  u64 checkpoints = 0;
  u64 rollbacks = 0;
  u64 rollback_failures = 0;

  double ipc() const {
    return cycles == 0 ? 0.0
                       : static_cast<double>(instructions) /
                             static_cast<double>(cycles);
  }
  double dtlb_hit_rate() const {
    const u64 total = dtlb.hits + dtlb.misses;
    return total == 0 ? 1.0
                      : static_cast<double>(dtlb.hits) /
                            static_cast<double>(total);
  }
  double itlb_hit_rate() const {
    const u64 total = itlb.hits + itlb.misses;
    return total == 0 ? 1.0
                      : static_cast<double>(itlb.hits) /
                            static_cast<double>(total);
  }
};

MachineStats collect_stats(Machine& machine);
void print_stats(const MachineStats& stats, std::ostream& os);

}  // namespace sealpk::sim
