#include "sim/trace.h"

#include <iomanip>

namespace sealpk::sim {

namespace {
void print_entry(std::ostream& os, core::Priv priv, u64 pc,
                 const isa::Inst& inst) {
  os << (priv == core::Priv::kUser ? 'U' : 'S') << " 0x" << std::hex
     << std::setw(10) << std::setfill('0') << pc << std::dec << ": "
     << isa::disassemble(inst) << '\n';
}
}  // namespace

void Tracer::dump(std::ostream& os) const {
  for (const auto& entry : entries_) {
    print_entry(os, entry.priv, entry.pc, entry.inst);
  }
}

void attach_stream_tracer(core::Hart& hart, std::ostream& os) {
  hart.set_trace_hook(
      [&os](core::Priv priv, u64 pc, const isa::Inst& inst) {
        print_entry(os, priv, pc, inst);
      });
}

}  // namespace sealpk::sim
