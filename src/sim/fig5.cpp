#include "sim/fig5.h"

#include <cmath>
#include <cstdio>

namespace sealpk::sim {

VariantResult run_cell(const wl::Workload& workload,
                       passes::ShadowStackKind kind,
                       std::optional<u64> scale_opt) {
  const u64 scale = scale_opt.value_or(workload.bench_scale);
  isa::Program prog = workload.build(scale);
  passes::ShadowStackOptions opts;
  opts.kind = kind;
  passes::apply_shadow_stack(prog, opts);

  Machine machine{MachineConfig{}};
  const int pid = machine.load(prog.link());
  const RunOutcome outcome = machine.run(8'000'000'000ULL);
  SEALPK_CHECK_MSG(outcome.completed,
                   workload.name << " did not finish under "
                                 << passes::shadow_stack_kind_name(kind));
  SEALPK_CHECK_MSG(machine.exit_code(pid) == 0,
                   workload.name << " exited "
                                 << machine.exit_code(pid) << " under "
                                 << passes::shadow_stack_kind_name(kind));
  const auto& reports = machine.kernel().reports();
  SEALPK_CHECK_MSG(reports.size() == 1 &&
                       reports[0] == workload.golden(scale),
                   workload.name << " checksum mismatch under "
                                 << passes::shadow_stack_kind_name(kind));
  VariantResult result{kind, outcome.cycles, outcome.instructions,
                       machine.hart().stats().calls,
                       machine.kernel().process(pid).aspace->pages_mapped()};
  return result;
}

std::vector<Fig5Row> run_figure5(std::optional<u64> scale, bool verbose) {
  std::vector<Fig5Row> rows;
  for (const auto& workload : wl::all_workloads()) {
    Fig5Row row;
    row.workload = &workload;
    if (verbose) {
      std::fprintf(stderr, "  %s/%s: baseline",
                   wl::suite_name(workload.suite), workload.name);
      std::fflush(stderr);
    }
    row.baseline = run_cell(workload, passes::ShadowStackKind::kNone, scale);
    row.baseline_cycles = row.baseline.cycles;
    for (const auto kind : kFig5Variants) {
      if (verbose) {
        std::fprintf(stderr, " %s", passes::shadow_stack_kind_name(kind));
        std::fflush(stderr);
      }
      row.variants.push_back(run_cell(workload, kind, scale));
    }
    if (verbose) std::fprintf(stderr, "\n");
    rows.push_back(std::move(row));
  }
  return rows;
}

double suite_gmean_overhead(const std::vector<Fig5Row>& rows,
                            wl::Suite suite, size_t variant_idx) {
  double log_sum = 0;
  unsigned count = 0;
  for (const auto& row : rows) {
    if (row.workload->suite != suite) continue;
    const double overhead = row.overhead_pct(variant_idx);
    // Clamp tiny overheads so a single near-zero bar cannot zero the mean
    // (the paper's log-scale plot has the same floor).
    log_sum += std::log(std::max(overhead, 0.01));
    ++count;
  }
  SEALPK_CHECK(count > 0);
  return std::exp(log_sum / count);
}

double mprotect_speedup_factor(const std::vector<Fig5Row>& rows) {
  const wl::Suite suites[] = {wl::Suite::kSpec2000, wl::Suite::kSpec2006,
                              wl::Suite::kMiBench};
  double log_sum = 0;
  for (const auto suite : suites) {
    const double mprot = suite_gmean_overhead(rows, suite, kMprotectIdx);
    const double rdwr = suite_gmean_overhead(rows, suite, kSealPkRdWrIdx);
    log_sum += std::log(mprot / rdwr);
  }
  return std::exp(log_sum / 3.0);
}

}  // namespace sealpk::sim
