#include "sim/fig5.h"

#include <cmath>
#include <cstdio>

#include "fleet/engine.h"

namespace sealpk::sim {

VariantResult run_cell(const wl::Workload& workload,
                       passes::ShadowStackKind kind,
                       std::optional<u64> scale_opt) {
  const u64 scale = scale_opt.value_or(workload.bench_scale);
  isa::Program prog = workload.build(scale);
  passes::ShadowStackOptions opts;
  opts.kind = kind;
  passes::apply_shadow_stack(prog, opts);

  Machine machine{MachineConfig{}};
  const int pid = machine.load(prog.link());
  const RunOutcome outcome = machine.run(8'000'000'000ULL);
  SEALPK_CHECK_MSG(outcome.completed,
                   workload.name << " did not finish under "
                                 << passes::shadow_stack_kind_name(kind));
  SEALPK_CHECK_MSG(machine.exit_code(pid) == 0,
                   workload.name << " exited "
                                 << machine.exit_code(pid) << " under "
                                 << passes::shadow_stack_kind_name(kind));
  const auto& reports = machine.kernel().reports();
  SEALPK_CHECK_MSG(reports.size() == 1 &&
                       reports[0] == workload.golden(scale),
                   workload.name << " checksum mismatch under "
                                 << passes::shadow_stack_kind_name(kind));
  VariantResult result{kind, outcome.cycles, outcome.instructions,
                       machine.hart().stats().calls,
                       machine.kernel().process(pid).aspace->pages_mapped()};
  return result;
}

std::vector<Fig5Row> run_figure5(std::optional<u64> scale, bool verbose,
                                 unsigned threads) {
  // One job per (workload, baseline + 5 variants) cell, in figure order;
  // the fleet engine owns scheduling, image sharing and containment.
  const auto& workloads = wl::all_workloads();
  std::vector<fleet::JobSpec> specs;
  specs.reserve(workloads.size() * (1 + kNumFig5Variants));
  for (const auto& workload : workloads) {
    for (size_t v = 0; v <= kNumFig5Variants; ++v) {
      fleet::JobSpec spec;
      spec.id = static_cast<u32>(specs.size());
      spec.workload = &workload;
      spec.ss = v == 0 ? passes::ShadowStackKind::kNone : kFig5Variants[v - 1];
      spec.scale = scale.value_or(workload.bench_scale);
      specs.push_back(std::move(spec));
    }
  }

  fleet::ImageCache cache;
  fleet::FleetOptions opts;
  opts.threads = threads;
  if (verbose) {
    opts.on_done = [](const fleet::JobResult& r) {
      std::fprintf(stderr, "  %s %s: %s\n", r.label.c_str(),
                   passes::shadow_stack_kind_name(r.ss), r.verdict.c_str());
    };
  }
  const std::vector<fleet::JobResult> results =
      fleet::run_jobs(specs, cache, opts);

  // Same contract as the old serial driver: any failed cell (checksum
  // mismatch, non-zero exit, timeout) throws instead of skewing the figure.
  for (const fleet::JobResult& r : results) {
    SEALPK_CHECK_MSG(r.ok, r.label << " under "
                                   << passes::shadow_stack_kind_name(r.ss)
                                   << ": " << r.verdict);
  }

  std::vector<Fig5Row> rows;
  rows.reserve(workloads.size());
  size_t idx = 0;
  for (const auto& workload : workloads) {
    Fig5Row row;
    row.workload = &workload;
    for (size_t v = 0; v <= kNumFig5Variants; ++v, ++idx) {
      const fleet::JobResult& r = results[idx];
      VariantResult cell{r.ss, r.cycles, r.instructions, r.calls,
                         r.pages_mapped};
      if (v == 0) {
        row.baseline = cell;
        row.baseline_cycles = cell.cycles;
      } else {
        row.variants.push_back(cell);
      }
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

double suite_gmean_overhead(const std::vector<Fig5Row>& rows,
                            wl::Suite suite, size_t variant_idx) {
  double log_sum = 0;
  unsigned count = 0;
  for (const auto& row : rows) {
    if (row.workload->suite != suite) continue;
    const double overhead = row.overhead_pct(variant_idx);
    // Clamp tiny overheads so a single near-zero bar cannot zero the mean
    // (the paper's log-scale plot has the same floor).
    log_sum += std::log(std::max(overhead, 0.01));
    ++count;
  }
  SEALPK_CHECK(count > 0);
  return std::exp(log_sum / count);
}

double mprotect_speedup_factor(const std::vector<Fig5Row>& rows) {
  const wl::Suite suites[] = {wl::Suite::kSpec2000, wl::Suite::kSpec2006,
                              wl::Suite::kMiBench};
  double log_sum = 0;
  for (const auto suite : suites) {
    const double mprot = suite_gmean_overhead(rows, suite, kMprotectIdx);
    const double rdwr = suite_gmean_overhead(rows, suite, kSealPkRdWrIdx);
    log_sum += std::log(mprot / rdwr);
  }
  return std::exp(log_sum / 3.0);
}

}  // namespace sealpk::sim
