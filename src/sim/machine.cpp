#include "sim/machine.h"

#include <exception>

namespace sealpk::sim {

int Machine::load(const isa::Image& image) {
  if (config_.verify_policy != analysis::LoadVerifyPolicy::kOff) {
    verify_report_ = analysis::verify_image(image, config_.verify_options);
    if (config_.verify_policy == analysis::LoadVerifyPolicy::kEnforce &&
        !verify_report_.admissible()) {
      return kLoadRefused;
    }
  }
  return kernel_.load_process(image);
}

RunOutcome Machine::run(u64 max_instructions) {
  RunOutcome outcome;
  const u64 start_instret = hart_.instret();
  const u64 start_cycles = hart_.cycles();
  u64 since_switch = 0;

  const bool faults = injector_ != nullptr;
  const u64 audit_every =
      config_.audit_interval != 0
          ? config_.audit_interval
          : (faults ? kDefaultAuditInterval : 0);
  u64 next_audit = audit_every != 0 ? hart_.instret() + audit_every : ~u64{0};

  // Watchdog state. Trap storm: consecutive traps pinned to one PC (the
  // handler is not making forward progress — e.g. a CAM refill that keeps
  // being dropped re-faults the same WRPKR forever). Livelock: consecutive
  // steps that retire nothing, the backstop for storms the same-PC check
  // cannot see (alternating fault PCs).
  u64 trap_streak = 0;
  u64 last_trap_pc = ~u64{0};
  u64 stall_streak = 0;

  while (!kernel_.all_exited()) {
    if (hart_.instret() - start_instret >= max_instructions) break;
    const u64 before = hart_.instret();
    try {
      if (hart_.instret() >= next_audit) {
        auditor_->audit_and_recover();
        if (faults) injector_->note_recoveries(kernel_.stats());
        next_audit = hart_.instret() + audit_every;
      }

      const core::StepResult r = hart_.step();
      if (r.kind == core::StepKind::kTrap) {
        const u64 trap_pc = hart_.csrs().sepc;
        kernel_.handle_trap();
        since_switch = 0;
        if (faults) injector_->note_recoveries(kernel_.stats());
        trap_streak = trap_pc == last_trap_pc ? trap_streak + 1 : 1;
        last_trap_pc = trap_pc;
        if (config_.watchdog_trap_storm != 0 &&
            trap_streak >= config_.watchdog_trap_storm) {
          kernel_.kill_current(os::kExitTrapStorm,
                               os::Kernel::KillOrigin::kWatchdog);
          if (faults) {
            // The storm was the visible face of whatever is outstanding on
            // the refill path; the kill is its resolution.
            injector_->resolve(fault::FaultKind::kCamDropRefill,
                               fault::FaultResolution::kProcessKilled);
          }
          trap_streak = 0;
          last_trap_pc = ~u64{0};
          stall_streak = 0;
        }
      } else {
        trap_streak = 0;
        last_trap_pc = ~u64{0};
        if (config_.preempt_quantum != 0 &&
            ++since_switch >= config_.preempt_quantum) {
          if (kernel_.runnable_threads() > 1) kernel_.preempt();
          since_switch = 0;
        }
      }

      if (hart_.instret() != before) {
        stall_streak = 0;
      } else if (config_.watchdog_livelock != 0 &&
                 ++stall_streak >= config_.watchdog_livelock) {
        kernel_.kill_current(os::kExitLivelock,
                             os::Kernel::KillOrigin::kWatchdog);
        stall_streak = 0;
        trap_streak = 0;
        last_trap_pc = ~u64{0};
      }

      if (faults) injector_->maybe_inject(hart_, kernel_);
    } catch (const std::exception& e) {
      // A host-level exception (CheckError from a torn invariant, bad_alloc,
      // ...) must never escape the simulated machine: contain it as a
      // modelled machine check against the process that triggered it. If
      // even the kill path is broken the machine stops instead of rethrowing.
      kernel_.note_host_error(e.what());
      bool contained = false;
      try {
        if (kernel_.has_current_thread()) {
          kernel_.kill_current(os::kExitMachineCheck,
                               os::Kernel::KillOrigin::kMachineCheck);
          contained = true;
        }
      } catch (const std::exception&) {
      }
      if (!contained) break;
      since_switch = 0;
    }
  }

  if (faults) {
    // Final reckoning: repair whatever is still inconsistent, then classify
    // any injected fault that never became architecturally visible.
    try {
      auditor_->audit_and_recover();
      injector_->note_recoveries(kernel_.stats());
    } catch (const std::exception& e) {
      kernel_.note_host_error(e.what());
    }
    injector_->resolve_all_outstanding(fault::FaultResolution::kMaskedBenign);
  }

  outcome.completed = kernel_.all_exited();
  outcome.instructions = hart_.instret() - start_instret;
  outcome.cycles = hart_.cycles() - start_cycles;
  return outcome;
}

}  // namespace sealpk::sim
