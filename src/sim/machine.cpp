#include "sim/machine.h"

#include <exception>

#include "snapshot/snapshot.h"

namespace sealpk::sim {

int Machine::load(const isa::Image& image) {
  if (config_.verify_policy != analysis::LoadVerifyPolicy::kOff) {
    verify_report_ = analysis::verify_image(image, config_.verify_options);
    if (config_.verify_policy == analysis::LoadVerifyPolicy::kEnforce &&
        !verify_report_.admissible()) {
      return kLoadRefused;
    }
  }
  const int pid = kernel_.load_process(image);
  if (pid >= 0 && recorder_ != nullptr) {
    // Feed the loader's function ranges to the profiler so PC samples can
    // be attributed to guest functions.
    recorder_->add_symbols(static_cast<u32>(pid), image.func_ranges);
  }
  return pid;
}

void Machine::take_checkpoint() {
  // The schedule advances before the save so the blob carries the *next*
  // deadline: a machine restored from this checkpoint re-checkpoints at the
  // same instret as the uninterrupted run would.
  runloop_.next_checkpoint = hart_.instret() + config_.checkpoint_interval;
  if (injector_ != nullptr && !auditor_->audit().clean()) {
    // Latent corruption in flight — freezing it would make the "known-good"
    // checkpoint anything but. Keep the previous one and try again next
    // period. audit() is peek-only, so skipping changes no machine state.
    return;
  }
  checkpoint_ = snapshot::save(*this);
  checkpoint_injected_ =
      injector_ != nullptr ? injector_->lifetime_injected() : 0;
  ++checkpoints_;
  if (recorder_ != nullptr) {
    recorder_->emit(obs::EventKind::kCheckpoint, hart_.instret(),
                    hart_.cycles(), obs::kNoPkey, checkpoints_,
                    checkpoint_.size());
  }
}

bool Machine::request_rollback() {
  if (rollback_pending_) return true;  // already armed by an earlier kill
  if (in_final_ || injector_ == nullptr || checkpoint_.empty()) return false;
  if (rollbacks_ >= config_.max_rollbacks) {
    ++rollback_failures_;
    return false;
  }
  if (injector_->lifetime_injected() <= checkpoint_injected_) {
    // Nothing fired since the checkpoint, so there is no injection to
    // suppress: re-execution would deterministically hit the same machine
    // check and loop forever. Let the kill stand.
    ++rollback_failures_;
    return false;
  }
  rollback_pending_ = true;
  return true;
}

void Machine::perform_rollback() {
  rollback_pending_ = false;
  const u64 fired = injector_->lifetime_injected() - checkpoint_injected_;
  try {
    snapshot::restore(*this, checkpoint_);
  } catch (const std::exception& e) {
    // The checkpoint itself failed to restore (should not happen — it was
    // produced by save() on this very machine). The machine may now be torn;
    // drop the checkpoint so we never retry it and fall back to the kill.
    ++rollback_failures_;
    checkpoint_.clear();
    kernel_.note_host_error(e.what());
    try {
      if (kernel_.has_current_thread()) {
        kernel_.kill_current(os::kExitMachineCheck,
                             os::Kernel::KillOrigin::kMachineCheck);
      }
    } catch (const std::exception&) {
    }
    return;
  }
  // Re-execute the doomed window with the injections that led here held
  // back. Anything the plan schedules *after* the window still fires — the
  // rollback absorbs this corruption, not the whole plan.
  injector_->suppress(fired);
  ++rollbacks_;
  if (recorder_ != nullptr) {
    // restore() re-seeded the stamping context; the event carries the
    // *restored* (rewound) clocks, so a trace shows the rewind explicitly.
    recorder_->emit(obs::EventKind::kRollback, hart_.instret(),
                    hart_.cycles(), obs::kNoPkey, rollbacks_, fired);
  }
}

RunOutcome Machine::run(u64 max_instructions) {
  RunOutcome outcome;
  const u64 start_instret = hart_.instret();
  const u64 start_cycles = hart_.cycles();

  const bool faults = injector_ != nullptr;
  const u64 audit_every =
      config_.audit_interval != 0
          ? config_.audit_interval
          : (faults ? kDefaultAuditInterval : 0);
  // next_audit == 0 is the "never scheduled" sentinel; a restored machine
  // arrives with its schedule already set and keeps it.
  if (runloop_.next_audit == 0) {
    runloop_.next_audit =
        audit_every != 0 ? hart_.instret() + audit_every : ~u64{0};
  }
  const u64 ckpt_every = config_.checkpoint_interval;

  while (!kernel_.all_exited()) {
    if (rollback_pending_) perform_rollback();
    if (hart_.instret() - start_instret >= max_instructions) break;
    const u64 before = hart_.instret();
    try {
      if (hart_.instret() >= runloop_.next_audit) {
        auditor_->audit_and_recover();
        if (faults) {
          injector_->note_recoveries(kernel_.stats());
          injector_->note_vault_detections(
              kernel_.vault_stats().corruption_detected);
        }
        runloop_.next_audit = hart_.instret() + audit_every;
      }
      // An escalated audit kill arms the rollback instead of killing; skip
      // the rest of the iteration so we do not step corrupted state.
      if (rollback_pending_) continue;

      if (ckpt_every != 0 && hart_.instret() >= runloop_.next_checkpoint) {
        take_checkpoint();
      }

      const core::StepResult r = hart_.step();
      if (r.kind == core::StepKind::kTrap) {
        const u64 trap_pc = hart_.csrs().sepc;
        kernel_.handle_trap();
        runloop_.since_switch = 0;
        if (faults) {
          injector_->note_recoveries(kernel_.stats());
          injector_->note_vault_detections(
              kernel_.vault_stats().corruption_detected);
        }
        runloop_.trap_streak =
            trap_pc == runloop_.last_trap_pc ? runloop_.trap_streak + 1 : 1;
        runloop_.last_trap_pc = trap_pc;
        if (config_.watchdog_trap_storm != 0 &&
            runloop_.trap_streak >= config_.watchdog_trap_storm) {
          kernel_.kill_current(os::kExitTrapStorm,
                               os::Kernel::KillOrigin::kWatchdog);
          if (faults) {
            // The storm was the visible face of whatever is outstanding on
            // the refill path; the kill is its resolution.
            injector_->resolve(fault::FaultKind::kCamDropRefill,
                               fault::FaultResolution::kProcessKilled);
          }
          runloop_.trap_streak = 0;
          runloop_.last_trap_pc = ~u64{0};
          runloop_.stall_streak = 0;
        }
      } else {
        runloop_.trap_streak = 0;
        runloop_.last_trap_pc = ~u64{0};
        if (config_.preempt_quantum != 0 &&
            ++runloop_.since_switch >= config_.preempt_quantum) {
          if (kernel_.runnable_threads() > 1) kernel_.preempt();
          runloop_.since_switch = 0;
        }
      }

      if (hart_.instret() != before) {
        runloop_.stall_streak = 0;
      } else if (config_.watchdog_livelock != 0 &&
                 ++runloop_.stall_streak >= config_.watchdog_livelock) {
        kernel_.kill_current(os::kExitLivelock,
                             os::Kernel::KillOrigin::kWatchdog);
        runloop_.stall_streak = 0;
        runloop_.trap_streak = 0;
        runloop_.last_trap_pc = ~u64{0};
      }

      if (faults && !rollback_pending_) injector_->maybe_inject(hart_, kernel_);
      // Sampling profiler tick: one compare per retired instruction when
      // tracing is on, nothing at all when it is off.
      if (recorder_ != nullptr) {
        recorder_->tick(hart_.instret(), hart_.cycles(), hart_.pc());
      }
    } catch (const std::exception& e) {
      // A host-level exception (CheckError from a torn invariant, bad_alloc,
      // ...) must never escape the simulated machine: contain it as a
      // modelled machine check against the process that triggered it (which
      // may arm a rollback instead of killing). If even the kill path is
      // broken the machine stops instead of rethrowing.
      kernel_.note_host_error(e.what());
      bool contained = false;
      try {
        if (kernel_.has_current_thread()) {
          kernel_.kill_current(os::kExitMachineCheck,
                               os::Kernel::KillOrigin::kMachineCheck);
          contained = true;
        }
      } catch (const std::exception&) {
      }
      if (!contained && rollback_pending_) contained = true;
      if (!contained) break;
      runloop_.since_switch = 0;
    }
  }

  if (rollback_pending_) perform_rollback();

  if (faults && kernel_.all_exited()) {
    // Final reckoning: repair whatever is still inconsistent, then classify
    // any injected fault that never became architecturally visible. Only on
    // actual completion — a run() that stopped at its instruction budget is
    // mid-flight, and reckoning there would perturb state an uninterrupted
    // run would not have (breaking snapshot-resume equivalence). No rollback
    // from here — there is nothing left to re-execute.
    in_final_ = true;
    try {
      auditor_->audit_and_recover();
      injector_->note_recoveries(kernel_.stats());
      injector_->note_vault_detections(
          kernel_.vault_stats().corruption_detected);
    } catch (const std::exception& e) {
      kernel_.note_host_error(e.what());
    }
    injector_->resolve_all_outstanding(fault::FaultResolution::kMaskedBenign);
    in_final_ = false;
  }

  outcome.completed = kernel_.all_exited();
  // A rollback can rewind instret below this run()'s starting point when the
  // restored checkpoint was taken during an earlier run() call; clamp
  // instead of wrapping.
  outcome.instructions =
      hart_.instret() >= start_instret ? hart_.instret() - start_instret : 0;
  outcome.cycles =
      hart_.cycles() >= start_cycles ? hart_.cycles() - start_cycles : 0;
  return outcome;
}

}  // namespace sealpk::sim
