#include "sim/machine.h"

namespace sealpk::sim {

int Machine::load(const isa::Image& image) {
  if (config_.verify_policy != analysis::LoadVerifyPolicy::kOff) {
    verify_report_ = analysis::verify_image(image, config_.verify_options);
    if (config_.verify_policy == analysis::LoadVerifyPolicy::kEnforce &&
        !verify_report_.admissible()) {
      return kLoadRefused;
    }
  }
  return kernel_.load_process(image);
}

RunOutcome Machine::run(u64 max_instructions) {
  RunOutcome outcome;
  const u64 start_instret = hart_.instret();
  const u64 start_cycles = hart_.cycles();
  u64 since_switch = 0;

  while (!kernel_.all_exited()) {
    if (hart_.instret() - start_instret >= max_instructions) break;
    const core::StepResult r = hart_.step();
    if (r.kind == core::StepKind::kTrap) {
      kernel_.handle_trap();
      since_switch = 0;
    } else if (config_.preempt_quantum != 0 &&
               ++since_switch >= config_.preempt_quantum) {
      if (kernel_.runnable_threads() > 1) kernel_.preempt();
      since_switch = 0;
    }
  }

  outcome.completed = kernel_.all_exited();
  outcome.instructions = hart_.instret() - start_instret;
  outcome.cycles = hart_.cycles() - start_cycles;
  return outcome;
}

}  // namespace sealpk::sim
