// FPGA resource-utilisation model reproducing Table I.
//
// We cannot place-and-route a Rocket core here, so the baseline column
// reuses the paper's measured utilisation of the unmodified Rocket on the
// Zedboard's XC7Z020 and the SealPK delta is estimated *structurally* from
// the units this library actually implements (PKR, SealReg, PK-CAM, DTLB
// pkey field, effective-permission logic, RoCC decode), using standard
// Xilinx 7-series mappings (6-input LUTs, 64-bit SLICEM LUTRAM). Each term
// is documented next to its formula; EXPERIMENTS.md compares against the
// paper's measured deltas.
#pragma once

#include <string>
#include <vector>

#include "common/bits.h"

namespace sealpk::hwcost {

// Zedboard: Zynq XC7Z020.
struct FpgaDevice {
  u32 luts = 53200;
  u32 ffs = 106400;
};

struct ResourceCount {
  u32 luts_logic = 0;
  u32 luts_mem = 0;
  u32 ffs = 0;

  u32 total_luts() const { return luts_logic + luts_mem; }

  ResourceCount operator+(const ResourceCount& other) const {
    return {luts_logic + other.luts_logic, luts_mem + other.luts_mem,
            ffs + other.ffs};
  }
};

// Structural parameters of the SealPK hardware (defaults = the paper's
// design point; the ablation bench sweeps them).
struct SealPkHwConfig {
  u32 pkr_rows = 32;
  u32 keys_per_row = 32;
  u32 cam_entries = 16;
  u32 va_bits = 39;
  u32 pkey_bits = 10;
  u32 dtlb_entries = 32;
  bool ff_based_seal_reg = true;  // 1024-bit fuse map in flip-flops
  bool include_rocc = true;       // paper footnote 8: RoCC support included
};

// The unmodified Rocket core (16 KiB L1I/L1D) on the XC7Z020 — Table I's
// baseline column, taken from the paper since we cannot synthesise.
ResourceCount baseline_rocket();

// Estimated cost of one SealPK component (for the per-component breakdown).
struct ComponentCost {
  std::string name;
  ResourceCount cost;
};

// Structural estimate of everything SealPK adds to the core.
std::vector<ComponentCost> sealpk_components(const SealPkHwConfig& config);
ResourceCount sealpk_overhead(const SealPkHwConfig& config);

// Formats a utilisation percentage the way Table I does.
double utilization_pct(u32 used, u32 available);

}  // namespace sealpk::hwcost
