#include "hwcost/fpga_model.h"

#include <vector>

namespace sealpk::hwcost {

ResourceCount baseline_rocket() {
  // Table I, baseline column (Rocket, 16 KiB L1I + L1D, XC7Z020).
  ResourceCount r;
  r.luts_logic = 30907;
  r.luts_mem = 1123;
  r.ffs = 16506;
  return r;
}

std::vector<ComponentCost> sealpk_components(const SealPkHwConfig& c) {
  std::vector<ComponentCost> parts;
  const u32 pkr_bits = c.pkr_rows * c.keys_per_row * 2;
  const u32 row_width = c.keys_per_row * 2;

  // PKR: a 2 Kb simple-dual-port memory maps onto SLICEM distributed RAM
  // (64 bits per LUT6 used as RAM64X1D), plus read-mux and write-decode
  // logic for the 64-bit row port.
  {
    ResourceCount r;
    // RAM64X1D primitives plus the SLICEM write-port sharing overhead
    // (~1 extra LUT per 3 RAM LUTs on 7-series).
    r.luts_mem = pkr_bits / 64 + pkr_bits / 160;
    r.luts_logic = row_width / 8 + c.pkr_rows / 4;  // port muxing + decode
    parts.push_back({"PKR (2 Kb rights memory)", r});
  }
  // DTLB pkey field: pkey_bits per entry of storage plus the widened
  // entry-select mux feeding the permission check.
  {
    ResourceCount r;
    r.ffs = c.dtlb_entries * c.pkey_bits;
    r.luts_logic = c.dtlb_entries * 2;  // 10-bit 32:1 mux slice share
    parts.push_back({"DTLB pkey field", r});
  }
  // SealReg: the 1024-bit one-time-fuse map.
  {
    ResourceCount r;
    if (c.ff_based_seal_reg) {
      r.ffs = c.pkr_rows * c.keys_per_row;
      r.luts_logic = c.pkr_rows;  // set/read decode
    } else {
      r.luts_mem = c.pkr_rows * c.keys_per_row / 64;
    }
    parts.push_back({"SealReg (seal fuse map)", r});
  }
  // PK-CAM: per entry a pkey tag plus the two VA-wide range bounds in FFs;
  // the match path is a pkey equality compare plus two VA-wide magnitude
  // compares (~(width/4) LUTs each as carry-chain compares).
  {
    ResourceCount r;
    const u32 entry_bits = c.pkey_bits + 2 * c.va_bits + 1;  // +valid
    r.ffs = c.cam_entries * entry_bits;
    const u32 match_luts =
        (c.pkey_bits / 3 + 1) + 2 * (c.va_bits / 4 + 1);  // eq + 2 ranges
    r.luts_logic = c.cam_entries * match_luts + c.cam_entries;  // + prio
    parts.push_back({"PK-CAM (16-entry range CAM)", r});
  }
  // Effective-permission control logic (Figure 2): the 2-bit field select
  // out of the 64-bit PKR row plus the PTE AND pkey intersection.
  {
    ResourceCount r;
    r.luts_logic = row_width / 2 + 8;
    parts.push_back({"effective-permission logic", r});
  }
  // RoCC custom-instruction support: decode, operand routing, response
  // mux and the pipeline interface registers. Paper footnote 8 notes the
  // reported overhead includes this; on Rocket it dominates the LUT delta.
  if (c.include_rocc) {
    ResourceCount r;
    r.luts_logic = 2350;  // decode, operand routing, response mux
    r.ffs = 130;          // interface pipeline registers
    parts.push_back({"RoCC interface + decode", r});
  }
  return parts;
}

ResourceCount sealpk_overhead(const SealPkHwConfig& config) {
  ResourceCount total;
  for (const auto& part : sealpk_components(config)) {
    total = total + part.cost;
  }
  return total;
}

double utilization_pct(u32 used, u32 available) {
  return 100.0 * static_cast<double>(used) / static_cast<double>(available);
}

}  // namespace sealpk::hwcost
