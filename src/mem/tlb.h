// Fully-associative TLB model with the SealPK per-entry pkey field.
//
// Figure 2 of the paper: each DTLB line gains a 10-bit pkey entry copied
// from the PTE on refill, so the effective-permission check reads the pkey
// permission (from PKR) in the same cycle as the page permission. The ITLB
// is unmodified — pkey checks apply to data accesses only — so instruction
// harts instantiate this class with pkey always zero.
#pragma once

#include <optional>
#include <vector>

#include "common/bits.h"
#include "common/check.h"
#include "common/serial.h"

namespace sealpk::mem {

struct TlbEntry {
  u64 vpn = 0;
  u64 ppn = 0;
  bool r = false, w = false, x = false, user = false;
  bool dirty = false;  // PTE D bit at refill time
  u16 pkey = 0;        // SealPK: 10 bits; MPK flavour: 4 bits
};

struct TlbStats {
  u64 hits = 0;
  u64 misses = 0;
  u64 flushes = 0;
  u64 evictions = 0;
};

class Tlb {
 public:
  explicit Tlb(size_t num_entries = 32) : entries_(num_entries) {
    SEALPK_CHECK(num_entries > 0);
  }

  size_t capacity() const { return entries_.size(); }

  // Looks up `vpn`; counts a hit or miss.
  std::optional<TlbEntry> lookup(u64 vpn) {
    for (const auto& slot : entries_) {
      if (slot.valid && slot.entry.vpn == vpn) {
        ++stats_.hits;
        return slot.entry;
      }
    }
    ++stats_.misses;
    return std::nullopt;
  }

  // Peek without touching statistics (used by tests and debug dumps).
  std::optional<TlbEntry> peek(u64 vpn) const {
    for (const auto& slot : entries_) {
      if (slot.valid && slot.entry.vpn == vpn) return slot.entry;
    }
    return std::nullopt;
  }

  // Inserts after a miss; replaces an existing mapping for the same VPN,
  // otherwise evicts round-robin (Rocket's TLB uses a pseudo-random/rr
  // policy; round-robin keeps the model deterministic).
  void insert(const TlbEntry& entry) {
    for (auto& slot : entries_) {
      if (slot.valid && slot.entry.vpn == entry.vpn) {
        slot.entry = entry;
        return;
      }
    }
    for (size_t i = 0; i < entries_.size(); ++i) {
      if (!entries_[i].valid) {
        entries_[i] = {entry, true};
        return;
      }
    }
    ++stats_.evictions;
    entries_[next_victim_] = {entry, true};
    next_victim_ = (next_victim_ + 1) % entries_.size();
  }

  // sfence.vma with rs1 = x0: global flush.
  void flush() {
    for (auto& slot : entries_) slot.valid = false;
    ++stats_.flushes;
  }

  // sfence.vma with rs1 != x0: single-VPN invalidation.
  void flush_vpn(u64 vpn) {
    for (auto& slot : entries_) {
      if (slot.valid && slot.entry.vpn == vpn) slot.valid = false;
    }
  }

  size_t valid_count() const {
    size_t n = 0;
    for (const auto& slot : entries_)
      if (slot.valid) ++n;
    return n;
  }

  // --- fault-model ports ---------------------------------------------------
  // Slot-indexed peek for the machine auditor (no stats side effects).
  const TlbEntry* peek_slot(size_t i) const {
    SEALPK_CHECK(i < entries_.size());
    return entries_[i].valid ? &entries_[i].entry : nullptr;
  }

  // XOR-corrupt a cached entry's pkey / permission / dirty bits in place,
  // modelling a soft error in the TLB array. PPN and VPN are left alone:
  // the fault model covers the SealPK-added fields and permission bits, not
  // wild translations. perm_xor bits: 1 = r, 2 = w, 4 = x, 8 = user.
  // Returns false if the slot is empty (nothing to corrupt).
  bool corrupt_slot(size_t i, u16 pkey_xor, u8 perm_xor, bool flip_dirty) {
    SEALPK_CHECK(i < entries_.size());
    if (!entries_[i].valid) return false;
    TlbEntry& e = entries_[i].entry;
    e.pkey ^= pkey_xor;
    if (perm_xor & 1) e.r = !e.r;
    if (perm_xor & 2) e.w = !e.w;
    if (perm_xor & 4) e.x = !e.x;
    if (perm_xor & 8) e.user = !e.user;
    if (flip_dirty) e.dirty = !e.dirty;
    return true;
  }

  const TlbStats& stats() const { return stats_; }
  void reset_stats() { stats_ = {}; }

  // Snapshot port: slots verbatim (including any injector-corrupted entry),
  // the round-robin cursor, and the stats.
  void save_state(ByteWriter& w) const {
    w.put_u64(entries_.size());
    for (const auto& slot : entries_) {
      w.put_u64(slot.entry.vpn);
      w.put_u64(slot.entry.ppn);
      w.put_bool(slot.entry.r);
      w.put_bool(slot.entry.w);
      w.put_bool(slot.entry.x);
      w.put_bool(slot.entry.user);
      w.put_bool(slot.entry.dirty);
      w.put_u16(slot.entry.pkey);
      w.put_bool(slot.valid);
    }
    w.put_u64(next_victim_);
    w.put_u64(stats_.hits);
    w.put_u64(stats_.misses);
    w.put_u64(stats_.flushes);
    w.put_u64(stats_.evictions);
  }
  void load_state(ByteReader& r) {
    const u64 n = r.get_u64();
    SEALPK_CHECK_MSG(n == entries_.size(),
                     "TLB capacity mismatch: snapshot has "
                         << n << " slots, machine has " << entries_.size());
    for (auto& slot : entries_) {
      slot.entry.vpn = r.get_u64();
      slot.entry.ppn = r.get_u64();
      slot.entry.r = r.get_bool();
      slot.entry.w = r.get_bool();
      slot.entry.x = r.get_bool();
      slot.entry.user = r.get_bool();
      slot.entry.dirty = r.get_bool();
      slot.entry.pkey = r.get_u16();
      slot.valid = r.get_bool();
    }
    next_victim_ = static_cast<size_t>(r.get_u64());
    stats_.hits = r.get_u64();
    stats_.misses = r.get_u64();
    stats_.flushes = r.get_u64();
    stats_.evictions = r.get_u64();
  }

 private:
  struct Slot {
    TlbEntry entry;
    bool valid = false;
  };
  std::vector<Slot> entries_;
  size_t next_victim_ = 0;
  TlbStats stats_;
};

}  // namespace sealpk::mem
