// Sparse simulated physical memory (the FPGA board's DRAM).
#pragma once

#include <algorithm>
#include <array>
#include <cstring>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/bits.h"
#include "common/check.h"
#include "common/serial.h"

namespace sealpk::mem {

constexpr u64 kPageSize = 4096;
constexpr unsigned kPageShift = 12;

// Physical memory, page-granular and lazily materialised. Reads of
// never-written pages return zero, like freshly initialised DRAM in the
// simulator. All accesses are bounds-checked against the configured size
// (the Zedboard used in the paper has 256 MiB).
class PhysMem {
 public:
  explicit PhysMem(u64 size_bytes = 256 * 1024 * 1024) : size_(size_bytes) {
    SEALPK_CHECK(size_bytes % kPageSize == 0);
  }

  u64 size() const { return size_; }

  u8 read_u8(u64 addr) const { return page_at(addr)[addr % kPageSize]; }

  void write_u8(u64 addr, u8 value) {
    mutable_page(addr)[addr % kPageSize] = value;
  }

  u16 read_u16(u64 addr) const { return read_le<u16>(addr); }
  u32 read_u32(u64 addr) const { return read_le<u32>(addr); }
  u64 read_u64(u64 addr) const { return read_le<u64>(addr); }
  void write_u16(u64 addr, u16 v) { write_le(addr, v); }
  void write_u32(u64 addr, u32 v) { write_le(addr, v); }
  void write_u64(u64 addr, u64 v) { write_le(addr, v); }

  void read_bytes(u64 addr, u8* out, u64 len) const {
    for (u64 i = 0; i < len; ++i) out[i] = read_u8(addr + i);
  }

  void write_bytes(u64 addr, const u8* in, u64 len) {
    for (u64 i = 0; i < len; ++i) write_u8(addr + i, in[i]);
  }

  void fill(u64 addr, u8 value, u64 len) {
    for (u64 i = 0; i < len; ++i) write_u8(addr + i, value);
  }

  bool contains(u64 addr, u64 len = 1) const {
    return addr < size_ && len <= size_ - addr;
  }

  size_t materialized_pages() const { return pages_.size(); }

  // Snapshot port. Pages are emitted in ascending index order and all-zero
  // pages are elided, so the encoding is canonical: two memories with equal
  // contents produce byte-identical streams regardless of materialisation
  // history. That property is what lets tests compare whole snapshots.
  void save_state(ByteWriter& w) const {
    w.put_u64(size_);
    std::vector<u64> indices;
    indices.reserve(pages_.size());
    static const Page kZero{};
    for (const auto& [index, page] : pages_) {
      if (*page != kZero) indices.push_back(index);
    }
    std::sort(indices.begin(), indices.end());
    w.put_u64(indices.size());
    for (u64 index : indices) {
      w.put_u64(index);
      w.put_bytes(pages_.at(index)->data(), kPageSize);
    }
  }
  void load_state(ByteReader& r) {
    const u64 size = r.get_u64();
    SEALPK_CHECK_MSG(size == size_, "phys size mismatch: snapshot has "
                                        << size << ", machine has " << size_);
    pages_.clear();
    const u64 count = r.get_u64();
    for (u64 i = 0; i < count; ++i) {
      const u64 index = r.get_u64();
      SEALPK_CHECK_MSG(index < (size_ >> kPageShift),
                       "snapshot page index out of range: " << index);
      auto page = std::make_unique<Page>();
      r.get_bytes(page->data(), kPageSize);
      pages_[index] = std::move(page);
    }
  }

 private:
  using Page = std::array<u8, kPageSize>;
  static const Page kZeroPage;

  const Page& page_at(u64 addr) const {
    SEALPK_CHECK_MSG(contains(addr), "phys read out of range 0x" << std::hex
                                                                 << addr);
    auto it = pages_.find(addr >> kPageShift);
    return it == pages_.end() ? kZeroPage : *it->second;
  }

  Page& mutable_page(u64 addr) {
    SEALPK_CHECK_MSG(contains(addr), "phys write out of range 0x" << std::hex
                                                                  << addr);
    auto& slot = pages_[addr >> kPageShift];
    if (!slot) slot = std::make_unique<Page>(Page{});
    return *slot;
  }

  template <typename T>
  T read_le(u64 addr) const {
    // Accesses in the simulated machine may be misaligned across pages;
    // assemble byte-wise (the hart enforces its own alignment policy).
    T v{};
    for (unsigned i = 0; i < sizeof(T); ++i)
      v |= static_cast<T>(static_cast<T>(read_u8(addr + i)) << (8 * i));
    return v;
  }

  template <typename T>
  void write_le(u64 addr, T v) {
    for (unsigned i = 0; i < sizeof(T); ++i)
      write_u8(addr + i, static_cast<u8>(v >> (8 * i)));
  }

  u64 size_;
  std::unordered_map<u64, std::unique_ptr<Page>> pages_;
};

}  // namespace sealpk::mem
