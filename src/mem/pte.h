// Sv39 page-table-entry codec, including the pkey field.
//
// The paper's key encoding decision (§III-A): the 10 reserved bits [63:54]
// of an Sv39 PTE hold a SealPK protection key (1024 domains). The Intel-MPK
// comparison flavour instead stores a 4-bit key in bits [57:54], mirroring
// x86's use of 4 ignored PTE bits (16 domains).
#pragma once

#include "common/bits.h"

namespace sealpk::mem {

namespace pte {

constexpr u64 kV = u64{1} << 0;
constexpr u64 kR = u64{1} << 1;
constexpr u64 kW = u64{1} << 2;
constexpr u64 kX = u64{1} << 3;
constexpr u64 kU = u64{1} << 4;
constexpr u64 kG = u64{1} << 5;
constexpr u64 kA = u64{1} << 6;
constexpr u64 kD = u64{1} << 7;

constexpr unsigned kPkeyShift = 54;
constexpr unsigned kSealPkPkeyBits = 10;  // bits [63:54]
constexpr unsigned kMpkPkeyBits = 4;      // bits [57:54]

constexpr u64 ppn_of(u64 pte) { return bits(pte, 53, 10); }

constexpr u64 make(u64 ppn, u64 flags, u32 pkey = 0,
                   unsigned pkey_bits = kSealPkPkeyBits) {
  return deposit((ppn << 10) | flags, kPkeyShift + pkey_bits - 1, kPkeyShift,
                 pkey);
}

constexpr u32 pkey_of(u64 pte, unsigned pkey_bits = kSealPkPkeyBits) {
  return static_cast<u32>(bits(pte, kPkeyShift + pkey_bits - 1, kPkeyShift));
}

constexpr u64 with_pkey(u64 pte, u32 pkey,
                        unsigned pkey_bits = kSealPkPkeyBits) {
  return deposit(pte, kPkeyShift + pkey_bits - 1, kPkeyShift, pkey);
}

constexpr u64 with_flags(u64 pte, u64 flags) {
  return (pte & ~u64{0xFF}) | (flags & 0xFF) | kV;
}

constexpr bool is_leaf(u64 pte) { return (pte & (kR | kW | kX)) != 0; }
constexpr bool valid(u64 pte) { return (pte & kV) != 0; }

// W-without-R is reserved in the RISC-V privileged spec (§4.3.1) — the very
// limitation SealPK's pkey encoding works around to offer write-only
// domains (paper §III-A).
constexpr bool reserved_perm_combo(u64 pte) {
  return (pte & kW) != 0 && (pte & kR) == 0;
}

}  // namespace pte

// Virtual-address helpers. Sv39 (3 levels) is the paper's platform; Sv48
// (4 levels) is supported per the paper's footnote 1 — the Sv48 PTE has
// the same 10 reserved bits, so SealPK carries over unchanged.
namespace sv39 {

constexpr unsigned kLevels = 3;
constexpr unsigned kVaBits = 39;

constexpr u64 vpn_slice(u64 vaddr, unsigned level) {
  return bits(vaddr, 12 + 9 * level + 8, 12 + 9 * level);
}

constexpr u64 vpn_of(u64 vaddr) { return bits(vaddr, 38, 12); }
constexpr u64 page_offset(u64 vaddr) { return bits(vaddr, 11, 0); }

// Sv39 requires bits [63:39] to equal bit 38 (canonical form).
constexpr bool canonical(u64 vaddr) {
  const u64 upper = bits(vaddr, 63, 38);
  return upper == 0 || upper == bits(~u64{0}, 63, 38);
}

}  // namespace sv39

namespace sv48 {

constexpr unsigned kLevels = 4;
constexpr unsigned kVaBits = 48;

constexpr u64 vpn_of(u64 vaddr) { return bits(vaddr, 47, 12); }

constexpr bool canonical(u64 vaddr) {
  const u64 upper = bits(vaddr, 63, 47);
  return upper == 0 || upper == bits(~u64{0}, 63, 47);
}

}  // namespace sv48

// Mode-parametric helpers (levels = 3 for Sv39, 4 for Sv48).
namespace svxx {

constexpr u64 vpn_slice(u64 vaddr, unsigned level) {
  return bits(vaddr, 12 + 9 * level + 8, 12 + 9 * level);
}

constexpr u64 vpn_of(u64 vaddr, unsigned levels) {
  return bits(vaddr, 12 + 9 * levels - 1, 12);
}

constexpr bool canonical(u64 vaddr, unsigned levels) {
  return levels == 4 ? sv48::canonical(vaddr) : sv39::canonical(vaddr);
}

}  // namespace svxx

}  // namespace sealpk::mem
