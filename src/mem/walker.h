// Sv39 hardware page-table walker model.
#pragma once

#include "mem/phys_mem.h"
#include "mem/pte.h"

namespace sealpk::mem {

enum class Access : u8 { kFetch, kLoad, kStore };

struct WalkResult {
  bool ok = false;
  u64 pte = 0;       // the leaf PTE (with A/D updated), if ok
  u64 pte_addr = 0;  // physical address of the leaf PTE
  u64 ppn = 0;       // 4 KiB-granular physical page number for the VA
  unsigned level = 0;      // leaf level (0 = 4 KiB, 1 = 2 MiB, 2 = 1 GiB)
  unsigned accesses = 0;   // memory accesses performed (timing model input)
};

// Walks the Sv39/Sv48 tree (`levels` = 3 or 4) rooted at physical page
// `root_ppn` for `vaddr`. Returns ok=false on any malformed/non-present
// entry; the caller raises the architectural page fault for `access`.
// Superpage leaves are resolved to a 4 KiB-granular PPN so the TLB can
// stay single-granularity. Like the Rocket PTW in its Linux
// configuration, the walker updates A (and D on stores) in memory.
WalkResult walk(const PhysMem& mem, u64 root_ppn, u64 vaddr, Access access,
                unsigned levels = sv39::kLevels);
WalkResult walk(PhysMem& mem, u64 root_ppn, u64 vaddr, Access access,
                bool update_ad, unsigned levels = sv39::kLevels);

}  // namespace sealpk::mem
