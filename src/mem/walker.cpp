#include "mem/walker.h"

namespace sealpk::mem {

const PhysMem::Page PhysMem::kZeroPage{};

namespace {

WalkResult walk_impl(const PhysMem& mem, PhysMem* wmem, u64 root_ppn,
                     u64 vaddr, Access access, unsigned levels) {
  WalkResult result;
  if (!svxx::canonical(vaddr, levels)) return result;

  u64 table_ppn = root_ppn;
  for (int level = static_cast<int>(levels) - 1; level >= 0; --level) {
    const u64 pte_addr =
        (table_ppn << kPageShift) +
        svxx::vpn_slice(vaddr, static_cast<unsigned>(level)) * 8;
    if (!mem.contains(pte_addr, 8)) return result;
    ++result.accesses;
    u64 entry = mem.read_u64(pte_addr);

    if (!pte::valid(entry) || pte::reserved_perm_combo(entry)) return result;

    if (pte::is_leaf(entry)) {
      // Superpage leaves must be aligned: low PPN slices must be zero.
      for (int l = 0; l < level; ++l) {
        if (bits(pte::ppn_of(entry), 9 * l + 8, 9 * l) != 0) return result;
      }
      if (wmem != nullptr) {
        u64 updated = entry | pte::kA;
        if (access == Access::kStore) updated |= pte::kD;
        if (updated != entry) {
          wmem->write_u64(pte_addr, updated);
          entry = updated;
        }
      }
      // Resolve to 4 KiB granularity: splice VPN low slices into the PPN.
      u64 ppn = pte::ppn_of(entry);
      for (int l = 0; l < level; ++l) {
        ppn = deposit(ppn, 9 * l + 8, 9 * l,
                      svxx::vpn_slice(vaddr, static_cast<unsigned>(l)));
      }
      result.ok = true;
      result.pte = entry;
      result.pte_addr = pte_addr;
      result.ppn = ppn;
      result.level = static_cast<unsigned>(level);
      return result;
    }

    // Non-leaf: U/A/D must be clear per the privileged spec; treat any set
    // bit as malformed.
    if ((entry & (pte::kU | pte::kA | pte::kD)) != 0) return result;
    table_ppn = pte::ppn_of(entry);
  }
  return result;  // level-0 non-leaf: fault
}

}  // namespace

WalkResult walk(const PhysMem& mem, u64 root_ppn, u64 vaddr, Access access,
                unsigned levels) {
  return walk_impl(mem, nullptr, root_ppn, vaddr, access, levels);
}

WalkResult walk(PhysMem& mem, u64 root_ppn, u64 vaddr, Access access,
                bool update_ad, unsigned levels) {
  return walk_impl(mem, update_ad ? &mem : nullptr, root_ppn, vaddr, access,
                   levels);
}

}  // namespace sealpk::mem
