#include "obs/slo.h"

#include <cstdio>
#include <ostream>
#include <sstream>

#include "common/json.h"

namespace sealpk::obs {

namespace {

[[noreturn]] void spec_error(const std::string& what) {
  throw std::runtime_error("slo spec: " + what);
}

double number_field(const JsonValue& obj, const std::string& key, bool& has) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr) {
    has = false;
    return 0.0;
  }
  if (!v->is_number()) spec_error("'" + key + "' must be a number");
  has = true;
  return v->number;
}

std::string string_field(const JsonValue& obj, const std::string& key,
                         bool required) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr) {
    if (required) spec_error("missing '" + key + "'");
    return "";
  }
  if (!v->is_string()) spec_error("'" + key + "' must be a string");
  return v->str;
}

// Deterministic short rendering for verdict details: integers print bare,
// non-integers with %.6g (never in committed artifacts, only verdicts).
std::string render(double v) {
  char buf[64];
  if (v == static_cast<double>(static_cast<long long>(v))) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%.6g", v);
  }
  return buf;
}

// Scalar view of a JSON value for rule comparison; false when the value
// is not scalar-comparable.
bool scalar(const JsonValue& v, double& out) {
  if (v.is_number()) {
    out = v.number;
    return true;
  }
  if (v.type == JsonValue::Type::kBool) {
    out = v.boolean ? 1.0 : 0.0;
    return true;
  }
  return false;
}

bool where_matches(const JsonValue& item, const SloRule& rule) {
  for (const auto& [key, want] : rule.where) {
    const JsonValue* v = item.find(key);
    if (v == nullptr) return false;
    if (v->is_string()) {
      if (v->str != want) return false;
    } else {
      double d = 0;
      if (!scalar(*v, d)) return false;
      char* end = nullptr;
      const double w = std::strtod(want.c_str(), &end);
      if (end == nullptr || *end != '\0' || d != w) return false;
    }
  }
  return true;
}

// Applies the rule's bounds to one value; returns "" on pass, else the
// failure description.
std::string check_bounds(const SloRule& rule, double v) {
  const double tol = rule.tolerance_pct / 100.0;
  if (rule.has_min && v < rule.min * (1.0 - tol)) {
    return "value " + render(v) + " < floor " + render(rule.min) +
           (rule.tolerance_pct > 0
                ? " (-" + render(rule.tolerance_pct) + "%)"
                : "");
  }
  if (rule.has_max && v > rule.max * (1.0 + tol)) {
    return "value " + render(v) + " > ceiling " + render(rule.max) +
           (rule.tolerance_pct > 0
                ? " (+" + render(rule.tolerance_pct) + "%)"
                : "");
  }
  if (rule.has_equals) {
    const double band = (rule.equals < 0 ? -rule.equals : rule.equals) * tol;
    const double delta = v - rule.equals;
    if (delta > band || delta < -band) {
      return "value " + render(v) + " != " + render(rule.equals);
    }
  }
  return "";
}

}  // namespace

const JsonValue* resolve_path(const JsonValue& root, const std::string& path) {
  const JsonValue* cur = &root;
  size_t i = 0;
  while (i < path.size()) {
    if (path[i] == '.') {
      ++i;
      continue;
    }
    if (path[i] == '[') {
      const size_t close = path.find(']', i);
      if (close == std::string::npos) return nullptr;
      const std::string idx = path.substr(i + 1, close - i - 1);
      char* end = nullptr;
      const unsigned long n = std::strtoul(idx.c_str(), &end, 10);
      if (end == nullptr || *end != '\0' || !cur->is_array() ||
          n >= cur->items.size()) {
        return nullptr;
      }
      cur = &cur->items[n];
      i = close + 1;
      continue;
    }
    size_t j = i;
    while (j < path.size() && path[j] != '.' && path[j] != '[') ++j;
    cur = cur->find(path.substr(i, j - i));
    if (cur == nullptr) return nullptr;
    i = j;
  }
  return cur;
}

SloSpec parse_slo_spec(const JsonValue& doc) {
  if (!doc.is_object()) spec_error("document must be an object");
  SloSpec spec;
  spec.schema = string_field(doc, "schema", /*required=*/true);
  if (spec.schema != kSloSchema) {
    spec_error("unsupported schema '" + spec.schema + "' (want " +
               kSloSchema + ")");
  }
  const JsonValue* rules = doc.find("rules");
  if (rules == nullptr || !rules->is_array()) {
    spec_error("missing 'rules' array");
  }
  for (const JsonValue& r : rules->items) {
    if (!r.is_object()) spec_error("rule must be an object");
    SloRule rule;
    rule.name = string_field(r, "name", /*required=*/true);
    rule.report = string_field(r, "report", /*required=*/true);
    rule.path = string_field(r, "path", /*required=*/true);
    rule.each = string_field(r, "each", /*required=*/false);
    rule.min = number_field(r, "min", rule.has_min);
    rule.max = number_field(r, "max", rule.has_max);
    rule.equals = number_field(r, "equals", rule.has_equals);
    bool has_tol = false;
    rule.tolerance_pct = number_field(r, "tolerance_pct", has_tol);
    bool has_req = false;
    const double req = number_field(r, "require_matches", has_req);
    if (has_req) rule.require_matches = static_cast<u64>(req);
    if (const JsonValue* where = r.find("where"); where != nullptr) {
      if (!where->is_object()) spec_error("'where' must be an object");
      for (const auto& [k, v] : where->members) {
        if (v.is_string()) {
          rule.where.emplace_back(k, v.str);
        } else if (v.is_number()) {
          rule.where.emplace_back(k, render(v.number));
        } else if (v.type == JsonValue::Type::kBool) {
          rule.where.emplace_back(k, v.boolean ? "1" : "0");
        } else {
          spec_error("'where' values must be scalars");
        }
      }
    }
    if (!rule.has_min && !rule.has_max && !rule.has_equals) {
      spec_error("rule '" + rule.name + "' has no min/max/equals bound");
    }
    spec.rules.push_back(std::move(rule));
  }
  if (spec.rules.empty()) spec_error("'rules' is empty");
  return spec;
}

SloVerdict evaluate_slo(const SloSpec& spec,
                        const std::map<std::string, JsonValue>& reports) {
  SloVerdict verdict;
  for (const SloRule& rule : spec.rules) {
    RuleVerdict rv;
    rv.name = rule.name;
    const auto rep = reports.find(rule.report);
    if (rep == reports.end()) {
      rv.pass = false;
      rv.detail = "report '" + rule.report + "' not provided";
    } else if (rule.each.empty()) {
      const JsonValue* v = resolve_path(rep->second, rule.path);
      double d = 0;
      if (v == nullptr || !scalar(*v, d)) {
        rv.pass = false;
        rv.detail = "path '" + rule.path + "' missing or not scalar";
      } else {
        rv.matched = 1;
        rv.detail = check_bounds(rule, d);
        rv.pass = rv.detail.empty();
      }
    } else {
      const JsonValue* arr = resolve_path(rep->second, rule.each);
      if (arr == nullptr || !arr->is_array()) {
        rv.pass = false;
        rv.detail = "'" + rule.each + "' missing or not an array";
      } else {
        rv.pass = true;
        for (size_t i = 0; i < arr->items.size(); ++i) {
          const JsonValue& item = arr->items[i];
          if (!where_matches(item, rule)) continue;
          ++rv.matched;
          const JsonValue* v = resolve_path(item, rule.path);
          double d = 0;
          if (v == nullptr || !scalar(*v, d)) {
            rv.pass = false;
            rv.detail = rule.each + "[" + std::to_string(i) + "]." +
                        rule.path + " missing or not scalar";
            break;
          }
          const std::string fail = check_bounds(rule, d);
          if (!fail.empty()) {
            rv.pass = false;
            rv.detail =
                rule.each + "[" + std::to_string(i) + "]: " + fail;
            break;
          }
        }
        if (rv.pass && rv.matched < rule.require_matches) {
          rv.pass = false;
          rv.detail = "matched " + std::to_string(rv.matched) +
                      " item(s), require_matches=" +
                      std::to_string(rule.require_matches);
        }
      }
    }
    verdict.pass = verdict.pass && rv.pass;
    verdict.rules.push_back(std::move(rv));
  }
  return verdict;
}

void write_slo_text(const SloVerdict& v, std::ostream& os) {
  for (const RuleVerdict& r : v.rules) {
    os << (r.pass ? "PASS" : "FAIL") << " " << r.name << " (matched "
       << r.matched << ")";
    if (!r.detail.empty()) os << ": " << r.detail;
    os << "\n";
  }
  os << "slo: " << (v.pass ? "ok" : "BREACH") << " (" << v.rules.size()
     << " rule(s))\n";
}

void write_slo_json(const SloVerdict& v, std::ostream& os) {
  os << "{\n  \"schema\": \"" << kSloSchema << "\",\n"
     << "  \"pass\": " << (v.pass ? "true" : "false") << ",\n"
     << "  \"rules\": [\n";
  for (size_t i = 0; i < v.rules.size(); ++i) {
    const RuleVerdict& r = v.rules[i];
    os << "    {\"name\": \"" << json_escape(r.name) << "\", \"pass\": "
       << (r.pass ? "true" : "false") << ", \"matched\": " << r.matched
       << ", \"detail\": \"" << json_escape(r.detail) << "\"}"
       << (i + 1 < v.rules.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
}

}  // namespace sealpk::obs
