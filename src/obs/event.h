// Observability event schema (DESIGN.md §10).
//
// One fixed-size record per interesting architectural moment: pkey
// lifecycle, domain transitions, traps/denials/violations, context
// switches, CAM refills, checkpoints/rollbacks, injected faults and
// profiler samples. Every event is timestamped with the hart's retired
// instruction count and modelled cycle count — never wall-clock — so a
// trace is a pure function of (program, config, seed) and byte-identical
// across hosts, runs and fleet thread counts.
#pragma once

#include "common/bits.h"
#include "common/serial.h"

namespace sealpk::obs {

// Events that concern the machine as a whole rather than one pkey carry
// this sentinel in Event::pkey.
inline constexpr u32 kNoPkey = 0xFFFFFFFFu;

enum class EventKind : u8 {
  // pkey lifecycle
  kPkeyAlloc = 0,    // arg0 = initial PKR permission bits
  kPkeyFree = 1,     // arg0 = pages still resident (lazy-drain pending)
  kPkeyLazyDrain = 2,
  kPkeyMprotect = 3, // arg0 = vaddr, arg1 = pages tagged
  kPkeySeal = 4,     // arg0 = seal_domain, arg1 = seal_page
  kPkeyPermSeal = 5, // arg0 = range start, arg1 = range end
  kPkeyPages = 6,    // arg0 = signed page delta, arg1 = resulting count
  // domain transitions
  kWrpkr = 7,        // arg0 = old PKR row, arg1 = new PKR row
  kRdpkr = 8,        // arg0 = PKR row read
  // faults and denials
  kPkeyDenial = 9,     // arg0 = faulting vaddr, arg1 = 1 if store
  kSealViolation = 10, // arg0 = faulting pc
  kTrap = 11,          // arg0 = scause, arg1 = stval
  kPageFault = 12,     // arg0 = faulting vaddr, arg1 = scause
  // kernel / machine
  kSyscall = 13,       // arg0 = syscall number
  kContextSwitch = 14, // arg0 = previous tid, arg1 = next tid
  kCamRefill = 15,     // arg0 = range start, arg1 = range end
  kCheckpoint = 16,    // arg0 = checkpoint ordinal, arg1 = blob bytes
  kRollback = 17,      // arg0 = rollback ordinal, arg1 = faults outstanding
  kProcessExit = 18,   // arg0 = exit code (sign-extended), arg1 = pid
  kProcessKill = 19,   // arg0 = exit code (sign-extended), arg1 = origin
  kFaultInjected = 20, // arg0 = fault kind, arg1 = detail
  // profiler
  kSample = 21, // arg0 = sampled pc
  // request plane (src/serve)
  kGateEnter = 22,           // arg0 = request index, arg1 = handler slot
  kGateExit = 23,            // arg0 = request index, arg1 = checksum
  kRequestDisposition = 24,  // arg0 = request index, arg1 = disposition
  kQuarantine = 25,          // arg0 = handler slot, arg1 = strike count
  // sealed-storage vault (src/vault)
  kVaultIntent = 26,  // arg0 = bundle id, arg1 = sequence
  kVaultCommit = 27,  // arg0 = bundle id, arg1 = sequence
  kVaultUnseal = 28,  // arg0 = bundle id, arg1 = byte length
  kVaultDenied = 29,  // arg0 = bundle id, arg1 = errno (negated)
  // pkey virtualization (src/mpk/vkey_table.h); Event::pkey carries the
  // physical key involved, args carry the virtual key.
  kVkeyMap = 30,    // arg0 = vkey, arg1 = pages re-keyed at map-in
  kVkeyEvict = 31,  // arg0 = vkey, arg1 = 1 if lazily drained (queued)
  kVkeySync = 32,   // arg0 = pages parked, arg1 = vkeys drained in batch
};

inline constexpr u32 kEventKindCount = 33;

const char* event_kind_name(EventKind kind);

// Fixed-layout event record. `pid`/`tid` are stamped by the recorder from
// the scheduling context current at emit time; `instret`/`cycles` come from
// the publishing hart.
struct Event {
  EventKind kind = EventKind::kTrap;
  u32 pid = 0;
  u32 tid = 0;
  u32 pkey = kNoPkey;
  u64 instret = 0;
  u64 cycles = 0;
  u64 arg0 = 0;
  u64 arg1 = 0;

  bool operator==(const Event&) const = default;

  void serialize(ByteWriter& w) const {
    w.put_u8(static_cast<u8>(kind));
    w.put_u32(pid);
    w.put_u32(tid);
    w.put_u32(pkey);
    w.put_u64(instret);
    w.put_u64(cycles);
    w.put_u64(arg0);
    w.put_u64(arg1);
  }

  static Event deserialize(ByteReader& r) {
    Event e;
    e.kind = static_cast<EventKind>(r.get_u8());
    e.pid = r.get_u32();
    e.tid = r.get_u32();
    e.pkey = r.get_u32();
    e.instret = r.get_u64();
    e.cycles = r.get_u64();
    e.arg0 = r.get_u64();
    e.arg1 = r.get_u64();
    return e;
  }
};

}  // namespace sealpk::obs
