#include "obs/export.h"

#include <algorithm>
#include <cstdio>
#include <iomanip>
#include <map>
#include <set>
#include <sstream>
#include <vector>

#include "common/json.h"

namespace sealpk::obs {

namespace {

std::string hex(u64 v) {
  std::ostringstream os;
  os << "0x" << std::hex << v;
  return os.str();
}

// Per-pid symbol table sorted by start address, for PC attribution.
class SymbolIndex {
 public:
  explicit SymbolIndex(const Trace& trace) {
    for (const auto& s : trace.symbols) by_pid_[s.pid].push_back(s);
    for (auto& [pid, v] : by_pid_) {
      std::sort(v.begin(), v.end(), [](const SymbolRange& a,
                                       const SymbolRange& b) {
        return a.start < b.start;
      });
    }
  }

  std::string lookup(u32 pid, u64 pc) const {
    auto it = by_pid_.find(pid);
    if (it != by_pid_.end()) {
      const auto& v = it->second;
      auto up = std::upper_bound(
          v.begin(), v.end(), pc,
          [](u64 addr, const SymbolRange& s) { return addr < s.start; });
      if (up != v.begin()) {
        --up;
        if (pc >= up->start && pc < up->end) return up->name;
      }
    }
    return "[unknown " + hex(pc & ~u64{0xFFF}) + "]";
  }

 private:
  std::map<u32, std::vector<SymbolRange>> by_pid_;
};

// Short per-kind detail string for the timeline and report.
std::string event_detail(const Event& e) {
  std::ostringstream os;
  switch (e.kind) {
    case EventKind::kPkeyAlloc: os << "perm=" << hex(e.arg0); break;
    case EventKind::kPkeyFree: os << "resident=" << e.arg0; break;
    case EventKind::kPkeyLazyDrain: break;
    case EventKind::kPkeyMprotect:
      os << "addr=" << hex(e.arg0) << " pages=" << e.arg1;
      break;
    case EventKind::kPkeySeal:
      os << "domain=" << e.arg0 << " page=" << e.arg1;
      break;
    case EventKind::kPkeyPermSeal:
      os << "range=[" << hex(e.arg0) << "," << hex(e.arg1) << ")";
      break;
    case EventKind::kPkeyPages:
      os << "delta=" << static_cast<i64>(e.arg0) << " now=" << e.arg1;
      break;
    case EventKind::kWrpkr:
      os << "row " << hex(e.arg0) << " -> " << hex(e.arg1);
      break;
    case EventKind::kRdpkr: os << "row=" << hex(e.arg0); break;
    case EventKind::kPkeyDenial:
      os << "addr=" << hex(e.arg0) << (e.arg1 != 0 ? " store" : " load");
      break;
    case EventKind::kSealViolation: os << "pc=" << hex(e.arg0); break;
    case EventKind::kTrap:
      os << "cause=" << e.arg0 << " tval=" << hex(e.arg1);
      break;
    case EventKind::kPageFault:
      os << "addr=" << hex(e.arg0) << " cause=" << e.arg1;
      break;
    case EventKind::kSyscall: os << "nr=" << e.arg0; break;
    case EventKind::kContextSwitch:
      os << "tid " << static_cast<i64>(e.arg0) << " -> "
         << static_cast<i64>(e.arg1);
      break;
    case EventKind::kCamRefill:
      os << "range=[" << hex(e.arg0) << "," << hex(e.arg1) << ")";
      break;
    case EventKind::kCheckpoint:
      os << "#" << e.arg0 << " bytes=" << e.arg1;
      break;
    case EventKind::kRollback:
      os << "#" << e.arg0 << " outstanding=" << e.arg1;
      break;
    case EventKind::kProcessExit:
      os << "code=" << static_cast<i64>(e.arg0) << " pid=" << e.arg1;
      break;
    case EventKind::kProcessKill:
      os << "code=" << static_cast<i64>(e.arg0) << " origin=" << e.arg1;
      break;
    case EventKind::kFaultInjected:
      os << "kind=" << e.arg0 << " detail=" << hex(e.arg1);
      break;
    case EventKind::kSample: os << "pc=" << hex(e.arg0); break;
    case EventKind::kGateEnter:
      os << "req=" << e.arg0 << " slot=" << e.arg1;
      break;
    case EventKind::kGateExit:
      os << "req=" << e.arg0 << " checksum=" << hex(e.arg1);
      break;
    case EventKind::kRequestDisposition:
      os << "req=" << e.arg0 << " disp=" << e.arg1;
      break;
    case EventKind::kQuarantine:
      os << "slot=" << e.arg0 << " strikes=" << e.arg1;
      break;
    case EventKind::kVaultIntent:
      os << "id=" << e.arg0 << " seq=" << e.arg1;
      break;
    case EventKind::kVaultCommit:
      os << "id=" << e.arg0 << " seq=" << e.arg1;
      break;
    case EventKind::kVaultUnseal:
      os << "id=" << e.arg0 << " len=" << e.arg1;
      break;
    case EventKind::kVaultDenied:
      os << "id=" << e.arg0 << " err=" << static_cast<i64>(e.arg1);
      break;
    case EventKind::kVkeyMap:
      os << "vkey=" << hex(e.arg0) << " pages=" << e.arg1;
      break;
    case EventKind::kVkeyEvict:
      os << "vkey=" << hex(e.arg0) << (e.arg1 != 0 ? " drained" : " parked");
      break;
    case EventKind::kVkeySync:
      os << "pages=" << e.arg0 << " vkeys=" << e.arg1;
      break;
  }
  return os.str();
}

}  // namespace

Metrics compute_metrics(const Trace& trace) {
  Metrics m;
  u64 last_cycles = 0;
  for (const auto& e : trace.events) {
    m.observe(e);
    last_cycles = std::max(last_cycles, e.cycles);
  }
  m.finish(last_cycles);
  return m;
}

void write_perfetto_json(const Trace& trace, std::ostream& os) {
  // Synthetic thread id hosting the pkey-domain residency track.
  constexpr u32 kDomainTid = 1000000;

  std::set<u32> pids;
  std::set<std::pair<u32, u32>> tids;
  for (const auto& e : trace.events) {
    pids.insert(e.pid);
    tids.insert({e.pid, e.tid});
  }

  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  auto sep = [&] {
    if (!first) os << ",";
    first = false;
    os << "\n";
  };

  for (u32 pid : pids) {
    sep();
    os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << pid
       << ",\"tid\":0,\"args\":{\"name\":\"guest " << pid << "\"}}";
    sep();
    os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" << pid
       << ",\"tid\":" << kDomainTid
       << ",\"args\":{\"name\":\"pkey domain\"}}";
  }
  for (const auto& [pid, tid] : tids) {
    sep();
    os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" << pid
       << ",\"tid\":" << tid << ",\"args\":{\"name\":\"tid " << tid
       << "\"}}";
  }

  // Domain residency slices: a complete ("X") event per WRPKR interval.
  u32 domain = 0;
  u64 domain_since = 0;
  u32 domain_pid = pids.empty() ? 0 : *pids.begin();
  auto close_slice = [&](u64 end_cycles) {
    if (end_cycles <= domain_since) return;
    sep();
    os << "{\"name\":\"pkey " << domain << "\",\"ph\":\"X\",\"ts\":"
       << domain_since << ",\"dur\":" << (end_cycles - domain_since)
       << ",\"pid\":" << domain_pid << ",\"tid\":" << kDomainTid << "}";
  };

  u64 last_cycles = 0;
  for (const auto& e : trace.events) {
    last_cycles = std::max(last_cycles, e.cycles);
    if (e.kind == EventKind::kWrpkr) {
      close_slice(e.cycles);
      domain = e.pkey;
      domain_since = e.cycles;
      domain_pid = e.pid;
      continue;
    }
    if (e.kind == EventKind::kRollback) domain_since = e.cycles;
    if (e.kind == EventKind::kSample) continue;
    if (e.kind == EventKind::kPkeyPages) {
      sep();
      os << "{\"name\":\"resident pages\",\"ph\":\"C\",\"ts\":" << e.cycles
         << ",\"pid\":" << e.pid << ",\"args\":{\"pkey " << e.pkey
         << "\":" << e.arg1 << "}}";
      continue;
    }
    sep();
    os << "{\"name\":\"" << json_escape(event_kind_name(e.kind))
       << "\",\"ph\":\"i\",\"s\":\"t\",\"ts\":" << e.cycles
       << ",\"pid\":" << e.pid << ",\"tid\":" << e.tid
       << ",\"args\":{\"instret\":" << e.instret;
    if (e.pkey != kNoPkey) os << ",\"pkey\":" << e.pkey;
    os << ",\"detail\":\"" << json_escape(event_detail(e)) << "\"}}";
  }
  close_slice(last_cycles);

  // Causal spans as nestable async slices: one "b"/"e" pair per span,
  // keyed so a child (handler visit) shares its parent request's id and
  // nests inside it in the UI. Point spans render as async instants.
  const SpanSet spans = build_spans(trace);
  for (const Span& s : spans.spans) {
    const u32 id = s.parent != kNoParent ? s.parent : s.id;
    std::ostringstream args;
    args << "{\"span\":" << s.id << ",\"key\":" << s.key << ",\"arg\":"
         << s.arg << ",\"status\":\"" << span_status_name(s.status)
         << "\",\"instret_dur\":" << s.duration() << "}";
    if (s.duration() == 0 && s.begin_cycles == s.end_cycles) {
      sep();
      os << "{\"cat\":\"span\",\"name\":\"" << span_kind_name(s.kind)
         << "\",\"ph\":\"n\",\"id\":" << id << ",\"ts\":" << s.begin_cycles
         << ",\"pid\":" << s.pid << ",\"tid\":" << s.tid
         << ",\"args\":" << args.str() << "}";
      continue;
    }
    sep();
    os << "{\"cat\":\"span\",\"name\":\"" << span_kind_name(s.kind)
       << "\",\"ph\":\"b\",\"id\":" << id << ",\"ts\":" << s.begin_cycles
       << ",\"pid\":" << s.pid << ",\"tid\":" << s.tid
       << ",\"args\":" << args.str() << "}";
    sep();
    os << "{\"cat\":\"span\",\"name\":\"" << span_kind_name(s.kind)
       << "\",\"ph\":\"e\",\"id\":" << id << ",\"ts\":" << s.end_cycles
       << ",\"pid\":" << s.pid << ",\"tid\":" << s.tid << "}";
  }

  // Flow arrows: retry chains, quarantine trips, drain membership.
  for (size_t i = 0; i < spans.flows.size(); ++i) {
    const FlowEdge& f = spans.flows[i];
    const Span& from = spans.spans[f.from];
    const Span& to = spans.spans[f.to];
    const char* name = f.kind == FlowEdge::Kind::kRetry         ? "retry"
                       : f.kind == FlowEdge::Kind::kQuarantine ? "quarantine"
                                                               : "drain";
    sep();
    os << "{\"cat\":\"flow\",\"name\":\"" << name
       << "\",\"ph\":\"s\",\"id\":" << (1000000 + i)
       << ",\"ts\":" << from.end_cycles << ",\"pid\":" << from.pid
       << ",\"tid\":" << from.tid << "}";
    sep();
    os << "{\"cat\":\"flow\",\"name\":\"" << name
       << "\",\"ph\":\"f\",\"bp\":\"e\",\"id\":" << (1000000 + i)
       << ",\"ts\":" << to.begin_cycles << ",\"pid\":" << to.pid
       << ",\"tid\":" << to.tid << "}";
  }

  os << "\n]}\n";
}

void write_timeline(const Trace& trace, std::ostream& os) {
  for (const auto& e : trace.events) {
    os << std::setw(12) << e.instret << " " << std::setw(12) << e.cycles
       << "  " << e.pid << "/" << e.tid << "  " << std::left
       << std::setw(16) << event_kind_name(e.kind) << std::right;
    if (e.pkey != kNoPkey) os << " pkey=" << e.pkey;
    const std::string detail = event_detail(e);
    if (!detail.empty()) os << "  " << detail;
    os << "\n";
  }
}

void write_collapsed(const Trace& trace, std::ostream& os) {
  const SymbolIndex symbols(trace);
  std::map<std::string, u64> stacks;
  for (const auto& e : trace.events) {
    if (e.kind != EventKind::kSample) continue;
    std::ostringstream key;
    key << "guest" << e.pid << ";" << symbols.lookup(e.pid, e.arg0);
    ++stacks[key.str()];
  }
  for (const auto& [stack, count] : stacks) {
    os << stack << " " << count << "\n";
  }
}

void write_report(const Trace& trace, std::ostream& os) {
  const Metrics m = compute_metrics(trace);
  os << "trace report\n";
  os << "  events            " << trace.events.size();
  if (trace.dropped != 0) {
    os << "  (+" << trace.dropped << " dropped by ring)";
  }
  os << "\n";
  os << "  traps             " << m.traps() << "  (syscalls "
     << m.syscalls() << ", page faults " << m.page_faults() << ")\n";
  os << "  context switches  " << m.context_switches() << "\n";
  if (m.checkpoints() != 0 || m.rollbacks() != 0) {
    os << "  checkpoints       " << m.checkpoints() << "  (rollbacks "
       << m.rollbacks() << ")\n";
  }
  if (m.faults_injected() != 0) {
    os << "  faults injected   " << m.faults_injected() << "\n";
  }

  os << "  per-pkey activity\n";
  os << "    pkey     wrpkr     rdpkr   denials  sealviol   refills  "
        "pages-hwm     cycles-in-domain\n";
  for (const auto& [pkey, pm] : m.pkeys()) {
    os << "    " << std::setw(4);
    if (pkey == kNoPkey) {
      os << "-";
    } else {
      os << pkey;
    }
    os << std::setw(10) << pm.wrpkr << std::setw(10) << pm.rdpkr
       << std::setw(10) << pm.denials << std::setw(10) << pm.seal_violations
       << std::setw(10) << pm.cam_refills << std::setw(11) << pm.pages_hwm
       << std::setw(21) << pm.cycles_in_domain << "\n";
  }

  for (const auto& [pkey, pm] : m.pkeys()) {
    if (pm.domain_visits == 0 || pkey == kNoPkey) continue;
    os << "  domain residency, pkey " << pkey << " (" << pm.domain_visits
       << " visits, log2 cycles)\n";
    for (u32 b = 0; b < kHistBuckets; ++b) {
      if (pm.residency_log2[b] == 0) continue;
      os << "    [2^" << std::setw(2) << b << ", 2^" << std::setw(2)
         << (b + 1) << ")  " << pm.residency_log2[b] << "\n";
    }
  }

  if (m.samples() != 0) {
    const SymbolIndex symbols(trace);
    std::map<std::string, u64> hot;
    for (const auto& e : trace.events) {
      if (e.kind == EventKind::kSample) {
        ++hot[symbols.lookup(e.pid, e.arg0)];
      }
    }
    std::vector<std::pair<std::string, u64>> ranked(hot.begin(), hot.end());
    std::stable_sort(ranked.begin(), ranked.end(),
                     [](const auto& a, const auto& b) {
                       return a.second > b.second;
                     });
    os << "  hottest functions (" << m.samples() << " samples, every "
       << trace.sample_interval << " instructions)\n";
    const size_t top = std::min<size_t>(ranked.size(), 10);
    for (size_t i = 0; i < top; ++i) {
      os << "    " << std::setw(8) << ranked[i].second << "  "
         << ranked[i].first << "\n";
    }
  }
}

void write_report_json(const Trace& trace, std::ostream& os) {
  const Metrics m = compute_metrics(trace);
  const SpanSet spans = build_spans(trace);
  const auto hists = span_histograms(spans);
  os << "{\n  \"schema\": \"sealpk-trace-report-v1\",\n"
     << "  \"events\": " << trace.events.size() << ",\n"
     << "  \"dropped\": " << trace.dropped << ",\n"
     << "  \"sample_interval\": " << trace.sample_interval << ",\n"
     << "  \"samples\": " << m.samples() << ",\n"
     << "  \"traps\": " << m.traps() << ",\n"
     << "  \"syscalls\": " << m.syscalls() << ",\n"
     << "  \"page_faults\": " << m.page_faults() << ",\n"
     << "  \"context_switches\": " << m.context_switches() << ",\n"
     << "  \"checkpoints\": " << m.checkpoints() << ",\n"
     << "  \"rollbacks\": " << m.rollbacks() << ",\n"
     << "  \"faults_injected\": " << m.faults_injected() << ",\n"
     << "  \"gate_enters\": " << m.gate_enters() << ",\n"
     << "  \"gate_exits\": " << m.gate_exits() << ",\n"
     << "  \"dispositions\": " << m.dispositions() << ",\n"
     << "  \"quarantines\": " << m.quarantines() << ",\n"
     << "  \"pkeys\": [\n";
  size_t left = m.pkeys().size();
  for (const auto& [pkey, pm] : m.pkeys()) {
    os << "    {\"pkey\": ";
    if (pkey == kNoPkey) {
      os << -1;
    } else {
      os << pkey;
    }
    os << ", \"wrpkr\": " << pm.wrpkr << ", \"rdpkr\": " << pm.rdpkr
       << ", \"denials\": " << pm.denials
       << ", \"seal_violations\": " << pm.seal_violations
       << ", \"cam_refills\": " << pm.cam_refills
       << ", \"pages_hwm\": " << pm.pages_hwm
       << ", \"domain_visits\": " << pm.domain_visits
       << ", \"cycles_in_domain\": " << pm.cycles_in_domain << "}"
       << (--left != 0 ? "," : "") << "\n";
  }
  os << "  ],\n"
     << "  \"spans\": {\n"
     << "    \"total\": " << spans.spans.size() << ",\n"
     << "    \"flows\": " << spans.flows.size() << ",\n"
     << "    \"segments\": " << spans.segments << ",\n"
     << "    \"final_ts\": " << spans.final_ts << ",\n"
     << "    \"by_kind\": {\n";
  for (u32 k = 0; k < kSpanKindCount; ++k) {
    os << "      \"" << span_kind_name(static_cast<SpanKind>(k))
       << "\": " << hists[k].quantiles_json()
       << (k + 1 < kSpanKindCount ? "," : "") << "\n";
  }
  os << "    }\n  }\n}\n";
}

std::string diff_traces(const Trace& a, const Trace& b) {
  std::ostringstream os;
  if (a.ring_capacity != b.ring_capacity ||
      a.sample_interval != b.sample_interval) {
    os << "config differs: ring " << a.ring_capacity << " vs "
       << b.ring_capacity << ", sample interval " << a.sample_interval
       << " vs " << b.sample_interval;
    return os.str();
  }
  if (a.dropped != b.dropped) {
    os << "dropped-event counts differ: " << a.dropped << " vs "
       << b.dropped;
    return os.str();
  }
  if (a.symbols != b.symbols) {
    os << "symbol tables differ (" << a.symbols.size() << " vs "
       << b.symbols.size() << " entries)";
    return os.str();
  }
  const size_t n = std::min(a.events.size(), b.events.size());
  for (size_t i = 0; i < n; ++i) {
    if (a.events[i] == b.events[i]) continue;
    const Event& x = a.events[i];
    const Event& y = b.events[i];
    os << "event " << i << " differs:\n  a: " << event_kind_name(x.kind)
       << " instret=" << x.instret << " cycles=" << x.cycles
       << " pid=" << x.pid << " tid=" << x.tid << " pkey=" << x.pkey
       << " " << event_detail(x) << "\n  b: " << event_kind_name(y.kind)
       << " instret=" << y.instret << " cycles=" << y.cycles
       << " pid=" << y.pid << " tid=" << y.tid << " pkey=" << y.pkey
       << " " << event_detail(y);
    return os.str();
  }
  if (a.events.size() != b.events.size()) {
    os << "event counts differ: " << a.events.size() << " vs "
       << b.events.size() << " (streams agree on the common prefix)";
    return os.str();
  }
  return "";
}

}  // namespace sealpk::obs
