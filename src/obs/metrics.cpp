#include "obs/metrics.h"

#include <algorithm>

namespace sealpk::obs {

void Metrics::close_domain(u64 cycles) {
  // A rollback (or a mid-stream report) can place `cycles` before the
  // interval start; drop the interval instead of charging it negatively.
  if (cycles > domain_since_) {
    const u64 delta = cycles - domain_since_;
    auto& m = pkeys_[domain_];
    m.cycles_in_domain += delta;
    ++m.domain_visits;
    ++m.residency_log2[log2_bucket(delta)];
  }
  domain_since_ = cycles;
}

void Metrics::observe(const Event& e) {
  ++events_;
  switch (e.kind) {
    case EventKind::kPkeyAlloc:
      ++pkeys_[e.pkey].allocs;
      break;
    case EventKind::kPkeyFree:
      ++pkeys_[e.pkey].frees;
      break;
    case EventKind::kPkeyLazyDrain:
      ++pkeys_[e.pkey].lazy_drains;
      break;
    case EventKind::kPkeyMprotect:
      ++pkeys_[e.pkey].mprotects;
      break;
    case EventKind::kPkeySeal:
      ++pkeys_[e.pkey].seals;
      break;
    case EventKind::kPkeyPermSeal:
      ++pkeys_[e.pkey].perm_seals;
      break;
    case EventKind::kPkeyPages: {
      auto& m = pkeys_[e.pkey];
      m.pages_current = e.arg1;
      m.pages_hwm = std::max(m.pages_hwm, m.pages_current);
      break;
    }
    case EventKind::kWrpkr:
      ++pkeys_[e.pkey].wrpkr;
      close_domain(e.cycles);
      domain_ = e.pkey;
      break;
    case EventKind::kRdpkr:
      ++pkeys_[e.pkey].rdpkr;
      break;
    case EventKind::kPkeyDenial:
      ++pkeys_[e.pkey].denials;
      break;
    case EventKind::kSealViolation:
      ++pkeys_[e.pkey].seal_violations;
      break;
    case EventKind::kTrap:
      ++traps_;
      break;
    case EventKind::kPageFault:
      ++page_faults_;
      break;
    case EventKind::kSyscall:
      ++syscalls_;
      break;
    case EventKind::kContextSwitch:
      ++context_switches_;
      break;
    case EventKind::kCamRefill:
      ++pkeys_[e.pkey].cam_refills;
      break;
    case EventKind::kCheckpoint:
      ++checkpoints_;
      break;
    case EventKind::kRollback:
      ++rollbacks_;
      // Execution rewinds: restart the open residency interval at the
      // restored clock so the replayed span is charged exactly once.
      domain_since_ = e.cycles;
      break;
    case EventKind::kProcessExit:
    case EventKind::kProcessKill:
      break;
    case EventKind::kFaultInjected:
      ++faults_injected_;
      break;
    case EventKind::kSample:
      ++samples_;
      break;
    case EventKind::kGateEnter:
      ++gate_enters_;
      if (e.pkey != kNoPkey) ++pkeys_[e.pkey].gate_enters;
      break;
    case EventKind::kGateExit:
      ++gate_exits_;
      if (e.pkey != kNoPkey) ++pkeys_[e.pkey].gate_exits;
      break;
    case EventKind::kRequestDisposition:
      ++dispositions_;
      break;
    case EventKind::kQuarantine:
      ++quarantines_;
      break;
  }
}

void Metrics::finish(u64 cycles) { close_domain(cycles); }

TraceSummary Metrics::summary(u64 dropped) const {
  TraceSummary s;
  s.events = events_;
  s.dropped = dropped;
  s.samples = samples_;
  s.traps = traps_;
  s.syscalls = syscalls_;
  s.context_switches = context_switches_;
  for (const auto& [pkey, m] : pkeys_) {
    s.wrpkr += m.wrpkr;
    s.rdpkr += m.rdpkr;
    s.denials += m.denials;
    s.seal_violations += m.seal_violations;
    s.cam_refills += m.cam_refills;
    s.pages_hwm = std::max(s.pages_hwm, m.pages_hwm);
    const bool touched = m.allocs | m.frees | m.lazy_drains | m.mprotects |
                         m.seals | m.perm_seals | m.wrpkr | m.rdpkr |
                         m.denials | m.seal_violations | m.cam_refills |
                         m.pages_hwm;
    if (touched) ++s.pkeys_touched;
  }
  return s;
}

}  // namespace sealpk::obs
