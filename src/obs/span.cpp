#include "obs/span.h"

#include <map>

namespace sealpk::obs {

const char* span_kind_name(SpanKind kind) {
  switch (kind) {
    case SpanKind::kRequest: return "request";
    case SpanKind::kHandlerVisit: return "handler_visit";
    case SpanKind::kQuarantine: return "quarantine";
    case SpanKind::kVaultTxn: return "vault_txn";
    case SpanKind::kVaultUnseal: return "vault_unseal";
    case SpanKind::kVkeyEvict: return "vkey_evict";
    case SpanKind::kVkeyDrain: return "vkey_drain";
    case SpanKind::kCheckpointWindow: return "checkpoint_window";
    case SpanKind::kRollbackWindow: return "rollback_window";
  }
  return "?";
}

const char* span_status_name(SpanStatus status) {
  switch (status) {
    case SpanStatus::kOk: return "ok";
    case SpanStatus::kRetried: return "retried";
    case SpanStatus::kFailed: return "failed";
    case SpanStatus::kDenied: return "denied";
    case SpanStatus::kQuarantined: return "quarantined";
    case SpanStatus::kShed: return "shed";
    case SpanStatus::kOpen: return "open";
  }
  return "?";
}

namespace {

// Serve dispositions (serve/server.h) as they appear in
// kRequestDisposition::arg1; mirrored here so obs stays leaf-level.
SpanStatus disposition_status(u64 d) {
  switch (d) {
    case 0: return SpanStatus::kOk;        // served
    case 1: return SpanStatus::kRetried;
    case 2: return SpanStatus::kShed;
    case 3: return SpanStatus::kQuarantined;
    default: return SpanStatus::kFailed;
  }
}

class Builder {
 public:
  SpanSet run(const Trace& trace) {
    for (const Event& e : trace.events) fold(e);
    finish();
    return std::move(set_);
  }

 private:
  // Opens a span (id == position, so the vector stays id-ordered).
  u32 open(SpanKind kind, const Event& e, u64 ts, u64 cyc, u64 key, u64 arg,
           u32 parent = kNoParent) {
    Span s;
    s.kind = kind;
    s.id = static_cast<u32>(set_.spans.size());
    s.parent = parent;
    s.pid = e.pid;
    s.tid = e.tid;
    s.pkey = e.pkey;
    s.begin = ts;
    s.end = ts;
    s.begin_cycles = cyc;
    s.end_cycles = cyc;
    s.key = key;
    s.arg = arg;
    s.status = SpanStatus::kOpen;
    set_.spans.push_back(s);
    return s.id;
  }

  void close(u32 id, u64 ts, u64 cyc, SpanStatus status) {
    Span& s = set_.spans[id];
    s.end = ts < s.begin ? s.begin : ts;
    s.end_cycles = cyc < s.begin_cycles ? s.begin_cycles : cyc;
    s.status = status;
  }

  void fold(const Event& e) {
    // Virtual timeline: a backwards instret stamp is either a rollback
    // (handled below, rewinds the watermark) or a fresh machine whose
    // clocks restarted — open a new segment so time stays monotonic.
    if (e.instret < watermark_ && e.kind != EventKind::kRollback) {
      offset_ += watermark_;
      coffset_ += cwatermark_;
      watermark_ = 0;
      cwatermark_ = 0;
      ++set_.segments;
    }
    const u64 ts = offset_ + e.instret;
    const u64 cyc = coffset_ + e.cycles;

    switch (e.kind) {
      case EventKind::kGateEnter: {
        const u64 req = e.arg0;
        auto [it, fresh] = request_.try_emplace(req, 0);
        if (fresh) {
          it->second = open(SpanKind::kRequest, e, ts, cyc, req, 0);
        }
        // A still-open visit means the previous attempt's epoch died
        // before the gate-exit: close it failed and chain the retry.
        auto ov = visit_.find(req);
        if (ov != visit_.end()) {
          close(ov->second, ts, cyc, SpanStatus::kFailed);
          last_visit_[req] = ov->second;
          visit_.erase(ov);
        }
        const u32 v = open(SpanKind::kHandlerVisit, e, ts, cyc, req,
                           /*slot=*/e.arg1, it->second);
        auto lv = last_visit_.find(req);
        if (lv != last_visit_.end()) {
          set_.flows.push_back({FlowEdge::Kind::kRetry, lv->second, v});
        }
        visit_[req] = v;
        slot_visit_[e.arg1] = v;
        break;
      }
      case EventKind::kGateExit: {
        auto ov = visit_.find(e.arg0);
        if (ov == visit_.end()) break;  // ring drop ate the enter
        close(ov->second, ts, cyc, SpanStatus::kOk);
        set_.spans[ov->second].arg = e.arg1;  // handler checksum
        last_visit_[e.arg0] = ov->second;
        visit_.erase(ov);
        break;
      }
      case EventKind::kRequestDisposition: {
        auto ov = visit_.find(e.arg0);
        if (ov != visit_.end()) {  // last attempt never exited its gate
          close(ov->second, ts, cyc, SpanStatus::kFailed);
          last_visit_[e.arg0] = ov->second;
          visit_.erase(ov);
        }
        auto rq = request_.find(e.arg0);
        if (rq != request_.end()) {
          close(rq->second, ts, cyc, disposition_status(e.arg1));
          set_.spans[rq->second].arg = e.arg1;
          request_.erase(rq);
        }
        break;
      }
      case EventKind::kQuarantine: {
        const u32 q =
            open(SpanKind::kQuarantine, e, ts, cyc, e.arg0, e.arg1);
        close(q, ts, cyc, SpanStatus::kQuarantined);
        auto sv = slot_visit_.find(e.arg0);
        if (sv != slot_visit_.end()) {
          set_.flows.push_back({FlowEdge::Kind::kQuarantine, sv->second, q});
        }
        break;
      }
      case EventKind::kVaultIntent: {
        txn_[e.arg0] = open(SpanKind::kVaultTxn, e, ts, cyc, e.arg0, e.arg1);
        break;
      }
      case EventKind::kVaultCommit:
      case EventKind::kVaultDenied: {
        auto it = txn_.find(e.arg0);
        const SpanStatus st = e.kind == EventKind::kVaultCommit
                                  ? SpanStatus::kOk
                                  : SpanStatus::kDenied;
        if (it != txn_.end()) {
          close(it->second, ts, cyc, st);
          set_.spans[it->second].arg = e.arg1;
          txn_.erase(it);
        } else if (e.kind == EventKind::kVaultDenied) {
          // Refusals without an intent (reads, seal violations) are
          // still worth a point span.
          const u32 d = open(SpanKind::kVaultTxn, e, ts, cyc, e.arg0, e.arg1);
          close(d, ts, cyc, SpanStatus::kDenied);
        }
        break;
      }
      case EventKind::kVaultUnseal: {
        const u32 u =
            open(SpanKind::kVaultUnseal, e, ts, cyc, e.arg0, e.arg1);
        close(u, ts, cyc, SpanStatus::kOk);
        break;
      }
      case EventKind::kVkeyEvict: {
        const u32 ev = open(SpanKind::kVkeyEvict, e, ts, cyc, /*vkey=*/e.arg0,
                            /*queued=*/e.arg1);
        close(ev, ts, cyc, SpanStatus::kOk);
        if (e.arg1 != 0) {  // queued for lazy drain: an episode is open
          if (drain_ == kNoParent) {
            drain_ = open(SpanKind::kVkeyDrain, e, ts, cyc, 0, 0);
          }
          set_.flows.push_back({FlowEdge::Kind::kDrain, ev, drain_});
        }
        break;
      }
      case EventKind::kVkeySync: {
        if (drain_ != kNoParent) {
          close(drain_, ts, cyc, SpanStatus::kOk);
          set_.spans[drain_].arg = e.arg1;  // vkeys drained in batch
          drain_ = kNoParent;
        }
        break;
      }
      case EventKind::kCheckpoint: {
        if (ckpt_ != kNoParent) close(ckpt_, ts, cyc, SpanStatus::kOk);
        ckpt_ = open(SpanKind::kCheckpointWindow, e, ts, cyc,
                     /*ordinal=*/e.arg0, /*blob bytes=*/e.arg1);
        break;
      }
      case EventKind::kRollback: {
        // The event is stamped at the *restored* clocks; the window it
        // spans runs from there up to the pre-rollback high-water mark.
        const u32 rb = open(SpanKind::kRollbackWindow, e, ts, cyc,
                            /*ordinal=*/e.arg0, /*suppressed=*/e.arg1);
        close(rb, offset_ + watermark_, coffset_ + cwatermark_,
              SpanStatus::kOk);
        watermark_ = e.instret;
        cwatermark_ = e.cycles;
        break;
      }
      default:
        break;
    }

    if (e.instret > watermark_) watermark_ = e.instret;
    if (e.cycles > cwatermark_) cwatermark_ = e.cycles;
    set_.final_ts = offset_ + watermark_;
    final_cyc_ = coffset_ + cwatermark_;
  }

  void finish() {
    // Close every dangling span at the final timestamp, marked kOpen so
    // downstream consumers can tell truncation from completion. Iterating
    // the span vector (not the maps) keeps the order deterministic.
    for (Span& s : set_.spans) {
      if (s.status == SpanStatus::kOpen) {
        close(s.id, set_.final_ts, final_cyc_, SpanStatus::kOpen);
      }
    }
  }

  SpanSet set_;
  u64 offset_ = 0, watermark_ = 0;
  u64 coffset_ = 0, cwatermark_ = 0;
  u64 final_cyc_ = 0;
  std::map<u64, u32> request_;     // req index -> open request span
  std::map<u64, u32> visit_;      // req index -> open handler visit
  std::map<u64, u32> last_visit_; // req index -> last closed visit
  std::map<u64, u32> slot_visit_; // slot -> last visit span on it
  std::map<u64, u32> txn_;        // bundle id -> open vault txn
  u32 drain_ = kNoParent;         // open vkey drain episode
  u32 ckpt_ = kNoParent;          // open checkpoint window
};

}  // namespace

SpanSet build_spans(const Trace& trace) { return Builder().run(trace); }

std::array<Histogram, kSpanKindCount> span_histograms(const SpanSet& set) {
  std::array<Histogram, kSpanKindCount> hists;
  for (const Span& s : set.spans) {
    hists[static_cast<u32>(s.kind)].record(s.duration());
  }
  return hists;
}

}  // namespace sealpk::obs
