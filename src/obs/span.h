// Causal span layer (DESIGN.md §16): a deterministic fold of the SPKTRACE
// event stream into typed spans with parent/child links and flow edges.
//
// The raw bus timestamps events with per-machine instret/cycles, but the
// episodes we care about cross machine boundaries: the serve plane runs
// each epoch on a fresh Machine (clocks restart at 0), and a rollback
// rewinds the clock of a single machine. The builder therefore folds
// events onto a *virtual timeline*: a monotonic instruction axis where a
// clock restart opens a new segment (offset advances by the previous
// segment's high-water mark) and a kRollback event — the one legitimate
// backwards stamp — rewinds the in-segment watermark instead. Span
// construction is a pure function of the event stream, so a span set (and
// every histogram derived from it) is byte-identical across hosts, runs
// and fleet thread counts.
#pragma once

#include <array>
#include <vector>

#include "obs/hist.h"
#include "obs/recorder.h"

namespace sealpk::obs {

enum class SpanKind : u8 {
  kRequest = 0,         // serve: first gate-enter -> disposition
  kHandlerVisit = 1,    // serve: gate-enter -> gate-exit (child of request)
  kQuarantine = 2,      // serve: slot quarantined (point span)
  kVaultTxn = 3,        // vault: intent -> commit / denied
  kVaultUnseal = 4,     // vault: unseal served (point span)
  kVkeyEvict = 5,       // mpk: one eviction (point span)
  kVkeyDrain = 6,       // mpk: first queued evict -> batch sync
  kCheckpointWindow = 7,// snapshot: checkpoint -> next checkpoint
  kRollbackWindow = 8,  // snapshot: rewound instret -> pre-rollback mark
};
inline constexpr u32 kSpanKindCount = 9;

const char* span_kind_name(SpanKind kind);

inline constexpr u32 kNoParent = 0xFFFFFFFFu;

enum class SpanStatus : u8 {
  kOk = 0,
  kRetried = 1,      // request served after >= 1 failed handler visit
  kFailed = 2,       // handler visit with no matching gate-exit
  kDenied = 3,       // vault txn refused
  kQuarantined = 4,  // request ended quarantined / slot quarantine point
  kShed = 5,         // request shed by load shedding
  kOpen = 6,         // still open when the stream ended
};
const char* span_status_name(SpanStatus status);

struct Span {
  SpanKind kind = SpanKind::kRequest;
  u32 id = 0;             // index into SpanSet::spans (open order)
  u32 parent = kNoParent;
  u32 pid = 0;
  u32 tid = 0;
  u32 pkey = kNoPkey;
  u64 begin = 0;          // virtual-timeline instret
  u64 end = 0;
  u64 begin_cycles = 0;   // virtual-timeline cycles
  u64 end_cycles = 0;
  u64 key = 0;            // request index / bundle id / vkey / ordinal
  u64 arg = 0;            // disposition / checksum / pages / batch size
  SpanStatus status = SpanStatus::kOk;

  u64 duration() const { return end >= begin ? end - begin : 0; }
};

// Causal arrow between two spans (rendered as a Perfetto flow).
struct FlowEdge {
  enum class Kind : u8 {
    kRetry = 0,       // handler visit N -> visit N+1 of the same request
    kQuarantine = 1,  // last visit on a slot -> its quarantine point
    kDrain = 2,       // eviction -> the drain episode that flushed it
  };
  Kind kind = Kind::kRetry;
  u32 from = 0;  // span ids
  u32 to = 0;
};

struct SpanSet {
  std::vector<Span> spans;      // id-ordered (== open order)
  std::vector<FlowEdge> flows;
  u64 segments = 1;  // virtual-timeline segments (1 = single machine)
  u64 final_ts = 0;  // virtual instret of the last event folded
};

// Folds a parsed trace into spans. Any span still open when the stream
// ends is closed at the final timestamp with SpanStatus::kOpen.
SpanSet build_spans(const Trace& trace);

// Per-kind duration histograms (instruction counts) over a span set.
std::array<Histogram, kSpanKindCount> span_histograms(const SpanSet& set);

}  // namespace sealpk::obs
