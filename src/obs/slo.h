// SLO / perf-regression gate (DESIGN.md §16): a small deterministic rules
// engine evaluated by the sealpk-slo CLI against the repo's own canonical
// JSON reports (sealpk-serve, sealpk-vkey, sealpk-fleet, span benches).
//
// Spec schema ("sealpk-slo-v1"):
//   {"schema": "sealpk-slo-v1",
//    "rules": [
//      {"name": "...",                 // unique label in verdicts
//       "report": "serve",            // which --report name=path to read
//       "path": "crossings_per_sec",  // dotted path, [n] indexes arrays
//       "min": 1000.0,                // any of min / max / equals
//       "tolerance_pct": 5.0,         // optional band around the bound
//       "each": "cells",              // optional: apply path per array item
//       "where": {"mode": "raw"},     // optional equality filter on items
//       "require_matches": 1}]}       // min items surviving the filter
//
// Bounds with tolerance t%: min passes when v >= min*(1 - t/100), max when
// v <= max*(1 + t/100), equals when |v - equals| <= |equals|*t/100. All
// comparisons are double-exact for the integer magnitudes our reports
// emit, so a verdict is a pure function of (spec, reports).
#pragma once

#include <iosfwd>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/bits.h"
#include "common/json_parse.h"

namespace sealpk::obs {

inline constexpr char kSloSchema[] = "sealpk-slo-v1";

struct SloRule {
  std::string name;
  std::string report;
  std::string path;
  std::string each;  // empty = path is absolute in the report
  std::vector<std::pair<std::string, std::string>> where;
  u64 require_matches = 1;
  bool has_min = false, has_max = false, has_equals = false;
  double min = 0, max = 0, equals = 0;
  double tolerance_pct = 0;
};

struct SloSpec {
  std::string schema;
  std::vector<SloRule> rules;
};

// Throws std::runtime_error on a malformed or wrong-schema spec.
SloSpec parse_slo_spec(const JsonValue& doc);

struct RuleVerdict {
  std::string name;
  bool pass = true;
  u64 matched = 0;   // items checked (1 for absolute rules)
  std::string detail;  // human-readable reason on failure, "" on pass
};

struct SloVerdict {
  bool pass = true;
  std::vector<RuleVerdict> rules;
};

SloVerdict evaluate_slo(const SloSpec& spec,
                        const std::map<std::string, JsonValue>& reports);

// Dotted-path lookup ("aggregate.jobs", "cells[3].churn_per_sec",
// "serve.request.p99"); nullptr when any hop is missing.
const JsonValue* resolve_path(const JsonValue& root, const std::string& path);

// One PASS/FAIL line per rule plus a verdict line.
void write_slo_text(const SloVerdict& v, std::ostream& os);
// Machine-readable verdict (the CI artifact uploaded on failure).
void write_slo_json(const SloVerdict& v, std::ostream& os);

}  // namespace sealpk::obs
