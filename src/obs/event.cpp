#include "obs/event.h"

namespace sealpk::obs {

const char* event_kind_name(EventKind kind) {
  switch (kind) {
    case EventKind::kPkeyAlloc: return "pkey_alloc";
    case EventKind::kPkeyFree: return "pkey_free";
    case EventKind::kPkeyLazyDrain: return "pkey_lazy_drain";
    case EventKind::kPkeyMprotect: return "pkey_mprotect";
    case EventKind::kPkeySeal: return "pkey_seal";
    case EventKind::kPkeyPermSeal: return "pkey_perm_seal";
    case EventKind::kPkeyPages: return "pkey_pages";
    case EventKind::kWrpkr: return "wrpkr";
    case EventKind::kRdpkr: return "rdpkr";
    case EventKind::kPkeyDenial: return "pkey_denial";
    case EventKind::kSealViolation: return "seal_violation";
    case EventKind::kTrap: return "trap";
    case EventKind::kPageFault: return "page_fault";
    case EventKind::kSyscall: return "syscall";
    case EventKind::kContextSwitch: return "context_switch";
    case EventKind::kCamRefill: return "cam_refill";
    case EventKind::kCheckpoint: return "checkpoint";
    case EventKind::kRollback: return "rollback";
    case EventKind::kProcessExit: return "process_exit";
    case EventKind::kProcessKill: return "process_kill";
    case EventKind::kFaultInjected: return "fault_injected";
    case EventKind::kSample: return "sample";
    case EventKind::kGateEnter: return "gate_enter";
    case EventKind::kGateExit: return "gate_exit";
    case EventKind::kRequestDisposition: return "request_disposition";
    case EventKind::kQuarantine: return "quarantine";
    case EventKind::kVaultIntent: return "vault_intent";
    case EventKind::kVaultCommit: return "vault_commit";
    case EventKind::kVaultUnseal: return "vault_unseal";
    case EventKind::kVaultDenied: return "vault_denied";
    case EventKind::kVkeyMap: return "vkey_map";
    case EventKind::kVkeyEvict: return "vkey_evict";
    case EventKind::kVkeySync: return "vkey_sync";
  }
  return "unknown";
}

}  // namespace sealpk::obs
