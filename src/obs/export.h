// Trace exporters: Chrome/Perfetto trace_event JSON (loads in
// ui.perfetto.dev), a compact text timeline, collapsed-stack profiler
// output (flamegraph.pl / speedscope compatible), a human report, and a
// structural diff used by the CI determinism oracle.
#pragma once

#include <ostream>
#include <string>

#include "obs/recorder.h"
#include "obs/span.h"

namespace sealpk::obs {

// Folds the blob's event stream through Metrics (closing the final
// domain-residency interval at the last cycle stamp seen).
Metrics compute_metrics(const Trace& trace);

// {"displayTimeUnit":...,"traceEvents":[...]}; ts is the modelled cycle
// count (1 cycle rendered as 1 µs). Samples are omitted here — they go to
// the collapsed output — to keep the JSON loadable for long runs. Causal
// spans (obs/span.h) ride along as nestable async slices ("b"/"e", keyed
// so handler visits nest inside their request) plus flow arrows
// ("s"/"f") for retry / quarantine / drain edges.
void write_perfetto_json(const Trace& trace, std::ostream& os);

// One line per event, instret-ordered, fixed columns.
void write_timeline(const Trace& trace, std::ostream& os);

// "guest<pid>;<function> <samples>" lines, sorted — feed directly to
// flamegraph.pl.
void write_collapsed(const Trace& trace, std::ostream& os);

// Aggregate report: event counts, per-pkey table, domain-residency
// histograms, hottest functions by sample count.
void write_report(const Trace& trace, std::ostream& os);

// Machine-readable twin of write_report ("sealpk-trace-report-v1"):
// counters, per-pkey table, and per-span-kind duration quantiles.
// Integer-only, so the output is byte-identical across hosts.
void write_report_json(const Trace& trace, std::ostream& os);

// Empty string when the traces are identical; otherwise a one-paragraph
// description of the first divergence (config, symbols, or event index).
std::string diff_traces(const Trace& a, const Trace& b);

}  // namespace sealpk::obs
