// Deterministic HDR-style latency histogram over integer durations
// (DESIGN.md §16). Durations are instruction counts — never wall-clock —
// so a histogram is a pure function of the event stream and byte-identical
// across hosts, runs and fleet thread counts.
//
// Bucketing: values below kLinearLimit get one exact bucket each; above
// that, every power-of-two range [2^e, 2^(e+1)) splits into kSubBuckets
// equal sub-buckets, bounding relative quantization error by
// 1/kSubBuckets (~3.1%). Exact min/max/sum/count ride alongside, and
// percentile() clamps into [min, max], so a single-sample percentile is
// the sample itself and p100 is always the true maximum.
//
// merge() is an elementwise add — associative and commutative — which is
// what lets per-thread histograms from a fleet run collapse into one
// result that is byte-identical to a serial fold.
#pragma once

#include <array>
#include <string>

#include "common/bits.h"

namespace sealpk::obs {

class Histogram {
 public:
  static constexpr u32 kSubBits = 5;
  static constexpr u32 kSubBuckets = 1u << kSubBits;   // 32
  static constexpr u32 kLinearLimit = kSubBuckets;     // exact below this
  static constexpr u32 kExponents = 64 - kSubBits;     // e in [kSubBits, 63]
  static constexpr u32 kBucketCount = kLinearLimit + kExponents * kSubBuckets;

  // Bucket index for a value (total order preserved: v <= w implies
  // index(v) <= index(w)).
  static u32 bucket_index(u64 v) {
    if (v < kLinearLimit) return static_cast<u32>(v);
    u32 e = 63;
    while ((v >> e) == 0) --e;  // 2^e <= v < 2^(e+1), e >= kSubBits
    const u32 sub =
        static_cast<u32>((v >> (e - kSubBits)) & (kSubBuckets - 1));
    return kLinearLimit + (e - kSubBits) * kSubBuckets + sub;
  }

  // Lower bound of a bucket — the value percentile() reports for ranks
  // landing in it (before the [min, max] clamp).
  static u64 bucket_floor(u32 index) {
    if (index < kLinearLimit) return index;
    const u32 e = kSubBits + (index - kLinearLimit) / kSubBuckets;
    const u32 sub = (index - kLinearLimit) % kSubBuckets;
    return (u64{1} << e) + (u64{sub} << (e - kSubBits));
  }

  void record(u64 v) {
    ++buckets_[bucket_index(v)];
    ++count_;
    sum_ += v;
    if (count_ == 1) {
      min_ = max_ = v;
    } else {
      if (v < min_) min_ = v;
      if (v > max_) max_ = v;
    }
  }

  // Elementwise add; merge(a, b) == merge(b, a) byte-for-byte.
  void merge(const Histogram& other) {
    if (other.count_ == 0) return;
    if (count_ == 0) {
      min_ = other.min_;
      max_ = other.max_;
    } else {
      if (other.min_ < min_) min_ = other.min_;
      if (other.max_ > max_) max_ = other.max_;
    }
    count_ += other.count_;
    sum_ += other.sum_;
    for (u32 i = 0; i < kBucketCount; ++i) buckets_[i] += other.buckets_[i];
  }

  u64 count() const { return count_; }
  u64 sum() const { return sum_; }
  u64 min() const { return count_ == 0 ? 0 : min_; }
  u64 max() const { return count_ == 0 ? 0 : max_; }

  // Value at percentile p (0..100): the floor of the bucket holding the
  // rank-ceil(count*p/100) sample (1-based), clamped into [min, max].
  // Empty histogram reports 0.
  u64 percentile(u32 p) const;

  // {"count":N,"p50":N,"p95":N,"p99":N,"max":N,"sum":N} — integer-only,
  // so committed benchmark JSON diffs clean byte-for-byte across hosts.
  std::string quantiles_json() const;

  bool operator==(const Histogram&) const = default;

 private:
  std::array<u64, kBucketCount> buckets_{};
  u64 count_ = 0;
  u64 sum_ = 0;
  u64 min_ = 0;
  u64 max_ = 0;
};

}  // namespace sealpk::obs
