// Per-pkey / per-domain metric aggregation over the event stream.
//
// Metrics are a pure fold over events (observe() one at a time), so the
// recorder's live counters, a report recomputed from a saved blob, and the
// fleet's per-job summary all agree by construction. Nothing here is
// serialized: a blob carries events only and metrics are recomputed.
#pragma once

#include <array>
#include <map>

#include "obs/event.h"

namespace sealpk::obs {

// Log2 histogram: bucket[i] counts values v with 2^i <= v < 2^(i+1)
// (bucket 0 also takes v == 0). 32 buckets cover any plausible cycle count.
inline constexpr u32 kHistBuckets = 32;

inline u32 log2_bucket(u64 v) {
  u32 b = 0;
  while (v > 1 && b + 1 < kHistBuckets) {
    v >>= 1;
    ++b;
  }
  return b;
}

struct PkeyMetrics {
  // lifecycle
  u64 allocs = 0;
  u64 frees = 0;
  u64 lazy_drains = 0;
  u64 mprotects = 0;
  u64 seals = 0;
  u64 perm_seals = 0;
  // domain transitions
  u64 wrpkr = 0;
  u64 rdpkr = 0;
  // faults
  u64 denials = 0;
  u64 seal_violations = 0;
  u64 cam_refills = 0;
  // request plane (src/serve): gate crossings attributed to this handler key
  u64 gate_enters = 0;
  u64 gate_exits = 0;
  // resident pages (tracked from kPkeyPages deltas)
  u64 pages_current = 0;
  u64 pages_hwm = 0;
  // cycles spent while this pkey was the active WRPKR domain, plus a log2
  // histogram of per-visit residency lengths
  u64 cycles_in_domain = 0;
  u64 domain_visits = 0;
  std::array<u64, kHistBuckets> residency_log2{};
};

// Canonical, deterministic per-job metric block carried by fleet
// JobResults and emitted into canonical records when tracing is on.
struct TraceSummary {
  u64 events = 0;
  u64 dropped = 0;  // ring-mode evictions
  u64 samples = 0;
  u64 wrpkr = 0;
  u64 rdpkr = 0;
  u64 denials = 0;
  u64 seal_violations = 0;
  u64 cam_refills = 0;
  u64 traps = 0;
  u64 syscalls = 0;
  u64 context_switches = 0;
  u64 pkeys_touched = 0;
  u64 pages_hwm = 0;  // max resident-page high-water mark over all pkeys

  bool operator==(const TraceSummary&) const = default;
};

class Metrics {
 public:
  void observe(const Event& e);

  // Closes the open domain-residency interval at `cycles` (end of run or
  // report time). Idempotent for a fixed end point.
  void finish(u64 cycles);

  const std::map<u32, PkeyMetrics>& pkeys() const { return pkeys_; }
  u64 events() const { return events_; }
  u64 traps() const { return traps_; }
  u64 syscalls() const { return syscalls_; }
  u64 context_switches() const { return context_switches_; }
  u64 page_faults() const { return page_faults_; }
  u64 samples() const { return samples_; }
  u64 checkpoints() const { return checkpoints_; }
  u64 rollbacks() const { return rollbacks_; }
  u64 faults_injected() const { return faults_injected_; }
  u64 gate_enters() const { return gate_enters_; }
  u64 gate_exits() const { return gate_exits_; }
  u64 dispositions() const { return dispositions_; }
  u64 quarantines() const { return quarantines_; }

  TraceSummary summary(u64 dropped = 0) const;

 private:
  void close_domain(u64 cycles);

  std::map<u32, PkeyMetrics> pkeys_;
  u64 events_ = 0;
  u64 traps_ = 0;
  u64 syscalls_ = 0;
  u64 context_switches_ = 0;
  u64 page_faults_ = 0;
  u64 samples_ = 0;
  u64 checkpoints_ = 0;
  u64 rollbacks_ = 0;
  u64 faults_injected_ = 0;
  u64 gate_enters_ = 0;
  u64 gate_exits_ = 0;
  u64 dispositions_ = 0;
  u64 quarantines_ = 0;
  // Active WRPKR domain. Pkey 0 (the default untagged domain) is resident
  // until the first WRPKR. A rollback rewinds the clock, so the open
  // interval is dropped rather than charged negatively.
  u32 domain_ = 0;
  u64 domain_since_ = 0;
};

}  // namespace sealpk::obs
