// Deterministic event recorder: the sink every publishing layer (hart,
// kernel, fault injector, machine) writes into.
//
// Discipline mirrors the hart's trace hook: publishers hold a raw nullable
// Recorder* and guard every emit with a null check, so a disabled trace is
// one predictable branch per publish site and zero allocations. Publishing
// charges no modelled cycles and never touches architectural state, which
// is what makes an enabled-tracing run byte-identical (instructions,
// cycles, snapshots) to a disabled one.
#pragma once

#include <deque>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "obs/event.h"
#include "obs/metrics.h"

namespace sealpk::obs {

struct TraceConfig {
  bool enabled = false;
  // 0 = unbounded full capture; otherwise keep only the last N events
  // (metrics still aggregate every event ever emitted).
  u64 ring_capacity = 0;
  // Sampling PC profiler period in retired instructions; 0 = off. Samples
  // fire at absolute instret multiples of the interval, so a run resumed
  // from a snapshot samples at the same points as an uninterrupted one.
  u64 sample_interval = 0;
};

// Guest function symbol range [start, end), tagged with the owning pid.
struct SymbolRange {
  u32 pid = 0;
  std::string name;
  u64 start = 0;
  u64 end = 0;

  bool operator==(const SymbolRange&) const = default;
};

// Parsed (or about-to-be-serialized) trace: what a .spktrc blob holds.
// Metrics are intentionally absent — they are a pure fold over `events`
// and are recomputed by report/export, so event streams captured across a
// snapshot boundary concatenate into exactly the uninterrupted blob.
struct Trace {
  u64 ring_capacity = 0;
  u64 sample_interval = 0;
  u64 dropped = 0;
  std::vector<SymbolRange> symbols;
  std::vector<Event> events;
};

// Blob container: 8-byte magic, u32 version, u64 payload length, u64
// FNV-1a checksum, payload — the same envelope as the snapshot format.
inline constexpr char kTraceMagic[8] = {'S', 'P', 'K', 'T',
                                        'R', 'A', 'C', 'E'};
inline constexpr u32 kTraceVersion = 1;

std::vector<u8> serialize(const Trace& trace);
Trace parse(const std::vector<u8>& blob);  // throws CheckError on damage

class Recorder {
 public:
  explicit Recorder(const TraceConfig& config) : config_(config) {}

  // Stamps the event with the current scheduling context and appends it.
  void emit(EventKind kind, u64 instret, u64 cycles, u32 pkey, u64 arg0,
            u64 arg1) {
    Event e;
    e.kind = kind;
    e.pid = cur_pid_;
    e.tid = cur_tid_;
    e.pkey = pkey;
    e.instret = instret;
    e.cycles = cycles;
    e.arg0 = arg0;
    e.arg1 = arg1;
    metrics_.observe(e);
    if (config_.ring_capacity != 0 &&
        events_.size() == config_.ring_capacity) {
      events_.pop_front();
      ++dropped_;
    }
    events_.push_back(e);
  }

  // Context switches also move the recorder's pid/tid stamp; the event
  // itself is stamped with the *incoming* thread.
  void context_switch(u64 instret, u64 cycles, u32 pid, u32 tid) {
    const u32 prev = cur_tid_;
    cur_pid_ = pid;
    cur_tid_ = tid;
    emit(EventKind::kContextSwitch, instret, cycles, kNoPkey, prev, tid);
  }

  // Re-seeds the stamping context without an event — used after a
  // snapshot restore, where the scheduling state arrives out of band.
  void seed_context(u32 pid, u32 tid) {
    cur_pid_ = pid;
    cur_tid_ = tid;
  }

  // Sampling profiler tick; called once per retired instruction from the
  // machine run loop. Fast path is one compare.
  void tick(u64 instret, u64 cycles, u64 pc) {
    if (instret < next_sample_) return;
    sample(instret, cycles, pc);
  }

  // Registers a loaded image's function ranges for PC attribution.
  void add_symbols(u32 pid,
                   const std::map<std::string, std::pair<u64, u64>>& ranges) {
    for (const auto& [name, range] : ranges) {
      symbols_.push_back({pid, name, range.first, range.second});
    }
  }

  const TraceConfig& config() const { return config_; }
  const std::deque<Event>& events() const { return events_; }
  u64 dropped() const { return dropped_; }
  const Metrics& metrics() const { return metrics_; }

  // Summary with the open domain-residency interval closed at `cycles`.
  TraceSummary summary(u64 cycles) const {
    Metrics m = metrics_;
    m.finish(cycles);
    return m.summary(dropped_);
  }

  Trace trace() const {
    Trace t;
    t.ring_capacity = config_.ring_capacity;
    t.sample_interval = config_.sample_interval;
    t.dropped = dropped_;
    t.symbols = symbols_;
    t.events.assign(events_.begin(), events_.end());
    return t;
  }

  std::vector<u8> serialize_blob() const { return obs::serialize(trace()); }

 private:
  void sample(u64 instret, u64 cycles, u64 pc);

  TraceConfig config_;
  u32 cur_pid_ = 0;
  u32 cur_tid_ = 0;
  u64 next_sample_ = 0;  // 0 = not yet aligned; set lazily on first tick
  u64 dropped_ = 0;
  std::deque<Event> events_;
  std::vector<SymbolRange> symbols_;
  Metrics metrics_;
};

}  // namespace sealpk::obs
