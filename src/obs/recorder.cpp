#include "obs/recorder.h"

#include <cstring>

#include "common/check.h"
#include "common/checksum.h"

namespace sealpk::obs {

void Recorder::sample(u64 instret, u64 cycles, u64 pc) {
  if (config_.sample_interval == 0) {
    next_sample_ = ~u64{0};
    return;
  }
  const u64 interval = config_.sample_interval;
  if (next_sample_ == 0) {
    // Align to absolute instret multiples so a resumed run fires at the
    // same points as the uninterrupted one regardless of where the
    // snapshot boundary fell.
    next_sample_ = ((instret + interval - 1) / interval) * interval;
    if (next_sample_ == 0) next_sample_ = interval;
    if (instret < next_sample_) return;
  }
  emit(EventKind::kSample, instret, cycles, kNoPkey, pc, 0);
  next_sample_ = (instret / interval + 1) * interval;
}

std::vector<u8> serialize(const Trace& trace) {
  ByteWriter payload;
  payload.put_u64(trace.ring_capacity);
  payload.put_u64(trace.sample_interval);
  payload.put_u64(trace.dropped);
  payload.put_u64(trace.symbols.size());
  for (const auto& s : trace.symbols) {
    payload.put_u32(s.pid);
    payload.put_str(s.name);
    payload.put_u64(s.start);
    payload.put_u64(s.end);
  }
  payload.put_u64(trace.events.size());
  for (const auto& e : trace.events) e.serialize(payload);

  const std::vector<u8> body = payload.take();
  ByteWriter out;
  out.put_bytes(reinterpret_cast<const u8*>(kTraceMagic),
                sizeof(kTraceMagic));
  out.put_u32(kTraceVersion);
  out.put_u64(body.size());
  out.put_u64(checksum64(body));
  out.put_bytes(body.data(), body.size());
  return out.take();
}

Trace parse(const std::vector<u8>& blob) {
  ByteReader r(blob);
  char magic[8];
  r.get_bytes(reinterpret_cast<u8*>(magic), sizeof(magic));
  SEALPK_CHECK_MSG(std::memcmp(magic, kTraceMagic, sizeof(magic)) == 0,
                   "not a SealPK trace blob (bad magic)");
  const u32 version = r.get_u32();
  SEALPK_CHECK_MSG(version == kTraceVersion,
                   "unsupported trace version " << version);
  const u64 payload_len = r.get_u64();
  const u64 want_sum = r.get_u64();
  SEALPK_CHECK_MSG(r.remaining() == payload_len,
                   "trace payload truncated: header says "
                       << payload_len << " bytes, " << r.remaining()
                       << " present");
  SEALPK_CHECK_MSG(
      checksum64(blob.data() + r.position(), payload_len) == want_sum,
      "trace payload checksum mismatch (damaged file)");

  Trace t;
  t.ring_capacity = r.get_u64();
  t.sample_interval = r.get_u64();
  t.dropped = r.get_u64();
  const u64 nsyms = r.get_u64();
  t.symbols.reserve(nsyms);
  for (u64 i = 0; i < nsyms; ++i) {
    SymbolRange s;
    s.pid = r.get_u32();
    s.name = r.get_str();
    s.start = r.get_u64();
    s.end = r.get_u64();
    t.symbols.push_back(std::move(s));
  }
  const u64 nevents = r.get_u64();
  t.events.reserve(nevents);
  for (u64 i = 0; i < nevents; ++i) {
    Event e = Event::deserialize(r);
    SEALPK_CHECK_MSG(static_cast<u32>(e.kind) < kEventKindCount,
                     "trace event " << i << " has unknown kind "
                                    << static_cast<u32>(e.kind));
    t.events.push_back(e);
  }
  SEALPK_CHECK_MSG(r.done(), "trailing bytes after trace payload");
  return t;
}

}  // namespace sealpk::obs
