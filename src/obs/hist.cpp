#include "obs/hist.h"

#include <sstream>

namespace sealpk::obs {

u64 Histogram::percentile(u32 p) const {
  if (count_ == 0) return 0;
  if (p > 100) p = 100;
  // 1-based rank of the requested sample; p == 0 degenerates to rank 1.
  u64 rank = (count_ * p + 99) / 100;
  if (rank == 0) rank = 1;
  u64 seen = 0;
  for (u32 i = 0; i < kBucketCount; ++i) {
    seen += buckets_[i];
    if (seen >= rank) {
      u64 v = bucket_floor(i);
      if (v < min_) v = min_;
      if (v > max_) v = max_;
      return v;
    }
  }
  return max_;
}

std::string Histogram::quantiles_json() const {
  std::ostringstream os;
  os << "{\"count\": " << count_ << ", \"p50\": " << percentile(50)
     << ", \"p95\": " << percentile(95) << ", \"p99\": " << percentile(99)
     << ", \"max\": " << max() << ", \"sum\": " << sum_ << "}";
  return os.str();
}

}  // namespace sealpk::obs
