// sealpk-vkey — unbounded pkey virtualization workbench (src/mpk).
//
// Drives the session-server workload: one virtual protection domain per
// user session, seeded connect/touch/disconnect churn, far more live
// domains than the 1023 usable physical keys. The kernel's vkey layer
// (vkey_table.h) multiplexes physical keys under the sessions with LRU
// eviction, real PTE re-keying, batched map-in and an MRU pin cache;
// --lazy selects the deferred drain-queue sync policy and --raw runs the
// same schedule on physical pkeys (capped at 768 sessions) for the
// virtualization-tax baseline.
//
//   run     one session-server run; prints the canonical churn record,
//           exits 0 iff the guest checksum matches the host golden
//   sweep   the key-churn matrix: virt-eager + virt-lazy (+ raw where it
//           fits) cells per scale, drained through the fleet pool;
//           --json writes BENCH_keychurn.json
//
// --selfcheck re-runs the sweep serially and requires the concatenated
// canonical records to be byte-identical to the parallel run.
//
// Exit status: 0 ok, 1 checksum/selfcheck failure, 2 usage or I/O error.
//
// Usage:
//   sealpk-vkey run --sessions=4096 --ops=8192
//   sealpk-vkey run --sessions=512 --raw
//   sealpk-vkey sweep --threads=4 --selfcheck --json=BENCH_keychurn.json
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "mpk/session.h"

using namespace sealpk;

namespace {

struct CliOptions {
  std::string mode;
  bool quiet = false;
  bool selfcheck = false;
  std::string json_path;
  mpk::SessionConfig cfg;
  bool ops_set = false;
  std::vector<u64> scales = {256, 768, 2048, 6144};
  unsigned threads = 0;
};

int usage() {
  std::fprintf(
      stderr,
      "usage: sealpk-vkey run [options]\n"
      "       sealpk-vkey sweep [options]\n"
      "options:\n"
      "  --sessions=<n>           live session domains (run)\n"
      "  --ops=<n>                churn operations after ramp (run;\n"
      "                           default 2*sessions)\n"
      "  --seed=<n>               churn schedule seed\n"
      "  --mru=<n>                per-process MRU pin slots\n"
      "  --lazy                   lazy drain-queue sync policy\n"
      "  --raw                    physical pkeys (sessions <= 768)\n"
      "  --max-instr=<n>          instruction budget per run\n"
      "  --scales=<a,b,...>       session scales for the sweep\n"
      "  --threads=<n>            fleet workers for the sweep\n"
      "  --selfcheck              serial re-run must match byte-for-byte\n"
      "  --json=<path>            machine-readable sweep report\n"
      "  -q                       suppress the canonical records\n");
  return 2;
}

bool write_text_file(const std::string& path, const std::string& text) {
  std::ofstream out(path);
  if (!out) return false;
  out << text;
  return out.good();
}

std::vector<u64> parse_scales(const char* s) {
  std::vector<u64> scales;
  while (*s != '\0') {
    char* end = nullptr;
    scales.push_back(std::strtoull(s, &end, 0));
    if (end == s) return {};
    s = *end == ',' ? end + 1 : end;
  }
  return scales;
}

int mode_run(const CliOptions& cli) {
  mpk::SessionConfig cfg = cli.cfg;
  if (!cli.ops_set) cfg.ops = 2 * cfg.sessions;
  if (cfg.raw && cfg.sessions > mpk::kRawSessionCap) {
    std::fprintf(stderr, "--raw needs --sessions <= %llu\n",
                 static_cast<unsigned long long>(mpk::kRawSessionCap));
    return 2;
  }
  const mpk::SessionResult r = mpk::run_session_server(cfg);
  if (!cli.quiet) std::printf("%s", mpk::session_record(cfg, r).c_str());
  if (!r.ok()) {
    std::fprintf(stderr,
                 "session server failed: completed=%d exit=%lld "
                 "checksum=%llu expected=%llu\n",
                 r.completed ? 1 : 0, static_cast<long long>(r.exit_code),
                 static_cast<unsigned long long>(r.checksum),
                 static_cast<unsigned long long>(r.expected));
    return 1;
  }
  return 0;
}

int mode_sweep(const CliOptions& cli) {
  if (cli.scales.empty()) return usage();
  const std::vector<mpk::ChurnCell> cells =
      mpk::run_churn_sweep(cli.scales, cli.cfg.seed, cli.threads);
  const std::string records = mpk::sweep_records(cells);
  if (!cli.quiet) std::printf("%s", records.c_str());
  int rc = 0;
  for (const mpk::ChurnCell& cell : cells) {
    if (!cell.result.ok()) rc = 1;
  }
  if (rc != 0) std::fprintf(stderr, "sweep: at least one cell failed\n");
  if (cli.selfcheck) {
    const std::vector<mpk::ChurnCell> serial =
        mpk::run_churn_sweep(cli.scales, cli.cfg.seed, 1);
    if (mpk::sweep_records(serial) != records) {
      std::fprintf(stderr, "selfcheck: serial sweep diverged\n");
      rc = 1;
    } else if (!cli.quiet) {
      std::printf("selfcheck: serial re-run byte-identical\n");
    }
  }
  if (!cli.json_path.empty()) {
    if (!write_text_file(cli.json_path, mpk::churn_json(cells))) {
      std::fprintf(stderr, "cannot write %s\n", cli.json_path.c_str());
      return 2;
    }
  }
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions cli;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "run" || arg == "sweep") {
      if (!cli.mode.empty()) return usage();
      cli.mode = arg;
    } else if (arg == "-q" || arg == "--quiet") {
      cli.quiet = true;
    } else if (arg == "--selfcheck") {
      cli.selfcheck = true;
    } else if (arg == "--lazy") {
      cli.cfg.lazy_sync = true;
    } else if (arg == "--raw") {
      cli.cfg.raw = true;
    } else if (arg.rfind("--sessions=", 0) == 0) {
      cli.cfg.sessions = std::strtoull(arg.c_str() + 11, nullptr, 0);
    } else if (arg.rfind("--ops=", 0) == 0) {
      cli.cfg.ops = std::strtoull(arg.c_str() + 6, nullptr, 0);
      cli.ops_set = true;
    } else if (arg.rfind("--seed=", 0) == 0) {
      cli.cfg.seed = std::strtoull(arg.c_str() + 7, nullptr, 0);
    } else if (arg.rfind("--mru=", 0) == 0) {
      cli.cfg.mru_slots =
          static_cast<u32>(std::strtoul(arg.c_str() + 6, nullptr, 0));
    } else if (arg.rfind("--max-instr=", 0) == 0) {
      cli.cfg.max_instructions = std::strtoull(arg.c_str() + 12, nullptr, 0);
    } else if (arg.rfind("--scales=", 0) == 0) {
      cli.scales = parse_scales(arg.c_str() + 9);
      if (cli.scales.empty()) return usage();
    } else if (arg.rfind("--threads=", 0) == 0) {
      cli.threads =
          static_cast<unsigned>(std::strtoul(arg.c_str() + 10, nullptr, 0));
    } else if (arg.rfind("--json=", 0) == 0) {
      cli.json_path = arg.substr(7);
    } else {
      return usage();
    }
  }
  if (cli.mode == "run") return mode_run(cli);
  if (cli.mode == "sweep") return mode_sweep(cli);
  return usage();
}
