// sealpk-model — bounded exhaustive model checker for the seal/pkey state
// machine (src/model).
//
// Drives the real hardware units (Pkr, SealUnit, PK-CAM refill path) and the
// kernel's key-management logic through every op sequence on a down-scaled
// machine, checking each transition against the executable reference spec.
// Counterexamples are written as JSON op scripts that `repro` (and the
// committed-trace regression tests) replay byte-for-byte.
//
// Usage:
//   sealpk-model explore                     # explore to closure, report
//   sealpk-model explore --selfcheck         # + determinism cross-check
//   sealpk-model explore --mutation=skip-free-clear --ce-dir=out/
//   sealpk-model repro trace.json...         # replay committed traces
//   sealpk-model stats                       # config + op alphabet
//   sealpk-model mutations                   # mutation self-test matrix
//
// Exit status: 0 clean (and complete for explore), 1 counterexamples found
// or a self-test failed, 2 usage/IO errors, 3 exploration hit a budget
// before closing the state space.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "model/explorer.h"
#include "model/trace.h"

using namespace sealpk;
using namespace sealpk::model;

namespace {

struct CliOptions {
  ModelConfig cfg;
  bool quiet = false;
  bool selfcheck = false;
  bool json = false;
  std::string json_path;  // empty: JSON goes to stdout
  std::string ce_dir;     // counterexample traces land here when set
  std::vector<std::string> paths;
};

int usage() {
  std::fprintf(
      stderr,
      "usage: sealpk-model explore [--pkeys=N] [--pages=N] [--cam=N]\n"
      "                            [--depth=N] [--max-states=N]\n"
      "                            [--threads=N] [--max-ce=N]\n"
      "                            [--mutation=<name>] [--ce-dir=<dir>]\n"
      "                            [--selfcheck] [--json[=<path>]] [-q]\n"
      "       sealpk-model repro <trace.json>... [-q]\n"
      "       sealpk-model stats [--pkeys=N] [--pages=N] [--cam=N]\n"
      "       sealpk-model mutations [--depth=N] [--max-states=N] [-q]\n");
  return 2;
}

bool parse_unsigned(const std::string& text, u64* out) {
  if (text.empty()) return false;
  u64 v = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') return false;
    v = v * 10 + static_cast<u64>(c - '0');
  }
  *out = v;
  return true;
}

bool parse_cli(int argc, char** argv, CliOptions* cli) {
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    u64 v = 0;
    if (arg == "-q" || arg == "--quiet") {
      cli->quiet = true;
    } else if (arg == "--selfcheck") {
      cli->selfcheck = true;
    } else if (arg == "--json") {
      cli->json = true;
    } else if (arg.rfind("--json=", 0) == 0) {
      cli->json = true;
      cli->json_path = arg.substr(7);
      if (cli->json_path.empty()) return false;
    } else if (arg.rfind("--ce-dir=", 0) == 0) {
      cli->ce_dir = arg.substr(9);
      if (cli->ce_dir.empty()) return false;
    } else if (arg.rfind("--pkeys=", 0) == 0) {
      if (!parse_unsigned(arg.substr(8), &v)) return false;
      cli->cfg.num_pkeys = static_cast<unsigned>(v);
    } else if (arg.rfind("--pages=", 0) == 0) {
      if (!parse_unsigned(arg.substr(8), &v)) return false;
      cli->cfg.num_pages = static_cast<unsigned>(v);
    } else if (arg.rfind("--cam=", 0) == 0) {
      if (!parse_unsigned(arg.substr(6), &v)) return false;
      cli->cfg.cam_entries = static_cast<unsigned>(v);
    } else if (arg.rfind("--depth=", 0) == 0) {
      if (!parse_unsigned(arg.substr(8), &v)) return false;
      cli->cfg.depth = v;
    } else if (arg.rfind("--max-states=", 0) == 0) {
      if (!parse_unsigned(arg.substr(13), &v) || v == 0) return false;
      cli->cfg.max_states = v;
    } else if (arg.rfind("--threads=", 0) == 0) {
      if (!parse_unsigned(arg.substr(10), &v) || v == 0) return false;
      cli->cfg.threads = static_cast<unsigned>(v);
    } else if (arg.rfind("--max-ce=", 0) == 0) {
      if (!parse_unsigned(arg.substr(9), &v) || v == 0) return false;
      cli->cfg.max_counterexamples = v;
    } else if (arg.rfind("--mutation=", 0) == 0) {
      const auto m = parse_mutation(arg.substr(11));
      if (!m.has_value()) return false;
      cli->cfg.mutation = *m;
    } else if (!arg.empty() && arg[0] == '-') {
      return false;
    } else {
      cli->paths.push_back(arg);
    }
  }
  return true;
}

void print_counterexample(const Counterexample& ce, size_t index) {
  std::printf("counterexample %zu: %s%s%s\n", index, ce.kind.c_str(),
              ce.invariant.empty() ? "" : " / ",
              ce.invariant.c_str());
  std::printf("  %s\n", ce.message.c_str());
  for (size_t i = 0; i < ce.ops.size(); ++i) {
    std::printf("  op %zu: %s\n", i, op_to_string(ce.ops[i]).c_str());
  }
}

bool dump_counterexamples(const CliOptions& cli,
                          const std::vector<Counterexample>& ces) {
  for (size_t i = 0; i < ces.size(); ++i) {
    const Trace t = make_trace(cli.cfg, ces[i]);
    std::ostringstream path;
    path << cli.ce_dir << "/ce-" << i << ".json";
    std::ofstream out(path.str());
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", path.str().c_str());
      return false;
    }
    write_trace(out, t);
    if (!cli.quiet) {
      std::printf("wrote %s\n", path.str().c_str());
    }
  }
  return true;
}

void print_stats_json(std::ostream& os, const CliOptions& cli,
                      const ExploreResult& res) {
  os << "{\n  \"schema\": \"sealpk-model-explore-v1\",\n"
     << "  \"pkeys\": " << cli.cfg.num_pkeys << ",\n"
     << "  \"pages\": " << cli.cfg.num_pages << ",\n"
     << "  \"cam\": " << cli.cfg.cam_entries << ",\n"
     << "  \"mutation\": \"" << mutation_name(cli.cfg.mutation) << "\",\n"
     << "  \"states\": " << res.stats.states << ",\n"
     << "  \"transitions\": " << res.stats.transitions << ",\n"
     << "  \"depth\": " << res.stats.depth << ",\n"
     << "  \"complete\": " << (res.stats.complete ? "true" : "false")
     << ",\n"
     << "  \"level_sizes\": [";
  for (size_t i = 0; i < res.stats.level_sizes.size(); ++i) {
    os << (i == 0 ? "" : ", ") << res.stats.level_sizes[i];
  }
  os << "],\n  \"counterexamples\": " << res.counterexamples.size()
     << "\n}\n";
}

int cmd_explore(const CliOptions& cli) {
  ProgressFn progress;
  if (!cli.quiet) {
    progress = [](u64 depth, u64 states, u64 transitions) {
      std::fprintf(stderr, "depth %llu: %llu states, %llu transitions\n",
                   static_cast<unsigned long long>(depth),
                   static_cast<unsigned long long>(states),
                   static_cast<unsigned long long>(transitions));
    };
  }
  const ExploreResult res = explore(cli.cfg, progress);

  if (cli.selfcheck) {
    // Determinism contract: the same exploration on 1 thread and on the
    // requested thread count must agree on every reported number and on
    // the counterexample list.
    ModelConfig serial = cli.cfg;
    serial.threads = 1;
    const ExploreResult ref = explore(serial);
    if (!(ref.stats == res.stats) ||
        !(ref.counterexamples == res.counterexamples)) {
      std::fprintf(stderr,
                   "selfcheck FAILED: %u-thread run disagrees with the "
                   "serial run\n",
                   cli.cfg.threads);
      return 1;
    }
    if (!cli.quiet) {
      std::printf("selfcheck ok: serial run identical\n");
    }
  }

  if (cli.json) {
    std::ofstream file;
    if (!cli.json_path.empty()) {
      file.open(cli.json_path);
      if (!file) {
        std::fprintf(stderr, "cannot write %s\n", cli.json_path.c_str());
        return 2;
      }
    }
    print_stats_json(cli.json_path.empty() ? std::cout : file, cli, res);
  } else if (!cli.quiet || !res.counterexamples.empty() ||
             res.stats.truncated) {
    std::printf(
        "%llu state(s), %llu transition(s), depth %llu, %s, "
        "%zu counterexample(s)\n",
        static_cast<unsigned long long>(res.stats.states),
        static_cast<unsigned long long>(res.stats.transitions),
        static_cast<unsigned long long>(res.stats.depth),
        res.stats.complete    ? "complete"
        : res.stats.truncated ? "TRUNCATED (state budget hit)"
                              : "bounded (depth limit)",
        res.counterexamples.size());
  }
  if (!cli.quiet) {
    for (size_t i = 0; i < res.counterexamples.size(); ++i) {
      print_counterexample(res.counterexamples[i], i);
    }
  }
  if (!cli.ce_dir.empty() && !res.counterexamples.empty()) {
    if (!dump_counterexamples(cli, res.counterexamples)) return 2;
  }
  if (!res.counterexamples.empty()) return 1;
  return res.stats.truncated ? 3 : 0;
}

int cmd_repro(const CliOptions& cli) {
  if (cli.paths.empty()) return usage();
  int failures = 0;
  for (const auto& path : cli.paths) {
    std::ifstream in(path);
    if (!in) {
      std::fprintf(stderr, "cannot read %s\n", path.c_str());
      return 2;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    std::string error;
    const auto trace = parse_trace(buf.str(), &error);
    if (!trace.has_value()) {
      std::fprintf(stderr, "%s: parse error: %s\n", path.c_str(),
                   error.c_str());
      return 2;
    }
    // The serializer is canonical; a trace that does not round-trip
    // byte-for-byte was edited by hand and should be rewritten.
    if (trace_to_json(*trace) != buf.str()) {
      std::fprintf(stderr, "%s: not in canonical form\n", path.c_str());
      ++failures;
      continue;
    }
    const std::string verdict = verify_trace(*trace);
    if (!verdict.empty()) {
      std::fprintf(stderr, "%s: %s\n", path.c_str(), verdict.c_str());
      ++failures;
    } else if (!cli.quiet) {
      std::printf("%s: ok (%zu op(s), expect %s)\n", path.c_str(),
                  trace->ops.size(), trace->kind.c_str());
    }
  }
  if (!cli.quiet || failures != 0) {
    std::printf("%zu trace(s) replayed, %d failure(s)\n", cli.paths.size(),
                failures);
  }
  return failures == 0 ? 0 : 1;
}

int cmd_stats(const CliOptions& cli) {
  const std::vector<Op> ops = enumerate_ops(cli.cfg);
  std::printf("configuration: %u pkeys, %u pages, %u-entry CAM, %u threads\n",
              cli.cfg.num_pkeys, cli.cfg.num_pages, cli.cfg.cam_entries,
              cli.cfg.threads);
  std::printf("mutation: %s\n", mutation_name(cli.cfg.mutation));
  std::printf("op alphabet (%zu ops):\n", ops.size());
  for (size_t i = 0; i < ops.size(); ++i) {
    std::printf("  %3zu: %s\n", i, op_to_string(ops[i]).c_str());
  }
  std::printf("access predicates: load/store x %u page(s) + fetch, checked "
              "per state\n",
              cli.cfg.num_pages);
  return 0;
}

int cmd_mutations(const CliOptions& cli) {
  // Mutation self-test: the unmutated machine must explore clean, and every
  // deliberately broken machine/spec variant must be caught. Each mutation
  // is reachable well before depth 7, so default to that bound rather than
  // paying for ten full closures.
  int failures = 0;
  for (unsigned mi = 0; mi < kNumMutations; ++mi) {
    ModelConfig cfg = cli.cfg;
    if (cfg.depth == 0) cfg.depth = 7;
    cfg.mutation = static_cast<Mutation>(mi);
    const ExploreResult res = explore(cfg);
    const bool expect_clean = cfg.mutation == Mutation::kNone;
    const bool clean = res.counterexamples.empty();
    const char* verdict;
    if (expect_clean) {
      const bool ok = clean && !res.stats.truncated;
      verdict = ok ? "ok (clean)" : "FAILED (expected clean)";
      if (!ok) ++failures;
    } else if (clean) {
      verdict = "FAILED (mutation not caught)";
      ++failures;
    } else {
      verdict = "ok (caught)";
    }
    if (!cli.quiet || verdict[0] == 'F') {
      std::printf("%-28s %-28s", mutation_name(cfg.mutation), verdict);
      if (!res.counterexamples.empty()) {
        const auto& ce = res.counterexamples.front();
        std::printf(" first: %s%s%s", ce.kind.c_str(),
                    ce.invariant.empty() ? "" : "/", ce.invariant.c_str());
      }
      std::printf("\n");
    }
  }
  if (!cli.quiet || failures != 0) {
    std::printf("%u mutation(s) checked, %d failure(s)\n", kNumMutations,
                failures);
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  CliOptions cli;
  if (!parse_cli(argc, argv, &cli)) return usage();
  try {
    cli.cfg.validate();
    if (cmd == "explore") return cmd_explore(cli);
    if (cmd == "repro") return cmd_repro(cli);
    if (cmd == "stats") return cmd_stats(cli);
    if (cmd == "mutations") return cmd_mutations(cli);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "sealpk-model: %s\n", e.what());
    return 2;
  }
  return usage();
}
