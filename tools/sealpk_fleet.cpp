// sealpk-fleet — parallel batch-execution driver for the workload matrix.
//
// A fixed-size worker pool drains the (workload x instrumentation-variant)
// job matrix; each worker owns a private Machine per job, linked images are
// built once per (workload, variant, scale) in a shared read-only cache,
// and per-job records are byte-identical for any --threads value (the
// determinism contract of src/fleet). Modes:
//
//   sweep                 run the matrix (default: all 17 workloads x all 7
//                         variants = 119 jobs, at each workload's bench
//                         scale); filter with --workloads / --variants
//   run <workload>...     run the named workloads (same engine/filters)
//   diff <a.json> <b.json> compare the canonical records of two reports;
//                         exit 1 when any record differs
//   list                  print workloads and variant names
//
// --chaos turns every job into the clean-vs-fault differential oracle of
// sealpk-chaos (two machines per job, fault plan from the --chaos-* flags).
// --json writes the aggregated report; with --canonical the scheduling-
// dependent "timing" section is omitted so reports from different thread
// counts are byte-comparable (that is what `diff` checks). --selfcheck runs
// the matrix twice — serial and with --threads workers — and fails unless
// every record matches.
//
// Exit status: 0 all jobs ok, 1 job failures / record divergence, 2 usage.
//
// Usage:
//   sealpk-fleet sweep --threads=8 --scale=1 --json=BENCH_fleet.json
//   sealpk-fleet sweep --variants='sealpk-*' --workloads='MiBench/*'
//   sealpk-fleet run qsort sha --variants=none,mprotect --threads=4
//   sealpk-fleet sweep --chaos --chaos-seed=7 --chaos-rate=2e-5 --threads=0
//   sealpk-fleet sweep --scale=1 --threads=4 --selfcheck
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "fleet/engine.h"
#include "fleet/report.h"

using namespace sealpk;

namespace {

struct VariantDef {
  const char* name;
  passes::ShadowStackKind ss;
  bool perm_seal;
};

// The 7-variant instrumentation axis of the evaluation matrix ("sealed" =
// sealpk-wr with the WRPKR permission-seal applied).
constexpr VariantDef kVariants[] = {
    {"none", passes::ShadowStackKind::kNone, false},
    {"inline", passes::ShadowStackKind::kInline, false},
    {"func", passes::ShadowStackKind::kFunc, false},
    {"sealpk-wr", passes::ShadowStackKind::kSealPkWr, false},
    {"sealpk-rdwr", passes::ShadowStackKind::kSealPkRdWr, false},
    {"mprotect", passes::ShadowStackKind::kMprotect, false},
    {"sealed", passes::ShadowStackKind::kSealPkWr, true},
};

struct CliOptions {
  std::string mode;
  std::vector<std::string> names;       // run mode positional workloads
  std::vector<std::string> workloads;   // --workloads= globs
  std::vector<std::string> variants;    // --variants= globs
  unsigned threads = 1;
  u64 scale = 0;  // 0 = per-workload bench_scale
  u64 budget = 8'000'000'000ULL;
  bool chaos = false;
  bool trace = false;       // --trace: per-job event recording + metrics
  u64 trace_ring = 4096;    // ring capture keeps fleet memory bounded
  bool quiet = false;
  bool canonical = false;
  bool selfcheck = false;
  bool json = false;  // bare --json: machine-readable output on stdout
  std::string json_path;
  // chaos plan / robustness knobs (only consulted with --chaos)
  fault::FaultPlan plan;
  bool rollback = false;
  bool no_pkr_save = false;
  u64 ckpt_interval = 0;
  u64 max_rollbacks = 3;
};

// Minimal glob: '*' any run, '?' any char; everything else literal.
bool glob_match(const char* pat, const char* text) {
  if (*pat == '\0') return *text == '\0';
  if (*pat == '*') {
    for (const char* t = text;; ++t) {
      if (glob_match(pat + 1, t)) return true;
      if (*t == '\0') return false;
    }
  }
  if (*text == '\0') return false;
  if (*pat != '?' && *pat != *text) return false;
  return glob_match(pat + 1, text + 1);
}

bool any_glob(const std::vector<std::string>& pats, const std::string& text) {
  for (const auto& p : pats) {
    if (glob_match(p.c_str(), text.c_str())) return true;
  }
  return false;
}

std::vector<std::string> split_commas(const std::string& text) {
  std::vector<std::string> out;
  std::stringstream ss(text);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

bool parse_kinds(const std::string& text, u32* out) {
  u32 mask = 0;
  for (const std::string& item : split_commas(text)) {
    if (item == "all") mask |= fault::kAllFaultKinds;
    else if (item == "pkr") mask |= kind_bit(fault::FaultKind::kPkrBitFlip);
    else if (item == "tlb") mask |= kind_bit(fault::FaultKind::kTlbCorrupt);
    else if (item == "pte") mask |= kind_bit(fault::FaultKind::kPteCorrupt);
    else if (item == "cam-drop")
      mask |= kind_bit(fault::FaultKind::kCamDropRefill);
    else if (item == "cam-dup")
      mask |= kind_bit(fault::FaultKind::kCamDupRefill);
    else if (item == "trap") mask |= kind_bit(fault::FaultKind::kSpuriousTrap);
    else return false;
  }
  if (mask == 0) return false;
  *out = mask;
  return true;
}

int usage() {
  std::fprintf(
      stderr,
      "usage: sealpk-fleet <sweep | run <workload>... | diff <a> <b> | "
      "list>\n"
      "       [--threads=<n>] [--scale=<n>] [--budget=<n>] [-q]\n"
      "       [--workloads=<glob,...>] [--variants=<glob,...>]\n"
      "       [--json=<path>] [--canonical] [--selfcheck]\n"
      "       [--chaos] [--chaos-seed=<n>] [--chaos-rate=<p>]\n"
      "       [--cam-rate=<p>] [--max-faults=<n>] [--kinds=<k,...>]\n"
      "       [--rollback] [--ckpt-interval=<n>] [--max-rollbacks=<n>]\n"
      "       [--no-pkr-save] [--trace] [--trace-ring=<n>]\n"
      "variants: none inline func sealpk-wr sealpk-rdwr mprotect sealed\n");
  return 2;
}

// Builds the selected (workload x variant) job matrix in deterministic
// (figure, variant-table) order.
std::vector<fleet::JobSpec> build_matrix(const CliOptions& cli) {
  std::vector<fleet::JobSpec> specs;
  for (const auto& w : wl::all_workloads()) {
    const std::string qualified =
        std::string(wl::suite_name(w.suite)) + "/" + w.name;
    if (cli.mode == "run") {
      bool wanted = false;
      for (const auto& name : cli.names) {
        if (name == w.name || name == qualified) wanted = true;
      }
      if (!wanted) continue;
    }
    if (!cli.workloads.empty() && !any_glob(cli.workloads, qualified) &&
        !any_glob(cli.workloads, w.name)) {
      continue;
    }
    for (const VariantDef& v : kVariants) {
      if (!cli.variants.empty() && !any_glob(cli.variants, v.name)) continue;
      fleet::JobSpec spec;
      spec.id = static_cast<u32>(specs.size());
      spec.workload = &w;
      spec.ss = v.ss;
      spec.perm_seal = v.perm_seal;
      spec.scale = cli.scale != 0 ? cli.scale : w.bench_scale;
      spec.budget = cli.budget;
      if (cli.chaos) {
        spec.kind = fleet::JobKind::kChaosDiff;
        spec.config.fault_plan = cli.plan;
        if (cli.no_pkr_save) spec.config.kernel.save_pkr_on_switch = false;
        if (cli.rollback || cli.ckpt_interval != 0) {
          spec.config.checkpoint_interval =
              cli.ckpt_interval != 0 ? cli.ckpt_interval : 25'000;
          spec.config.max_rollbacks = cli.max_rollbacks;
        }
      }
      if (cli.trace) {
        // Fan trace capture across the matrix: each job records its own
        // deterministic event stream; the metric summary lands in the
        // canonical record (and report) per job.
        spec.config.trace.enabled = true;
        spec.config.trace.ring_capacity = cli.trace_ring;
      }
      specs.push_back(std::move(spec));
    }
  }
  return specs;
}

struct SweepOutcome {
  std::vector<fleet::JobResult> results;
  double elapsed_ms = 0;
  u64 image_builds = 0;
};

SweepOutcome run_matrix(const std::vector<fleet::JobSpec>& specs,
                        unsigned threads, bool progress) {
  fleet::ImageCache cache;
  fleet::FleetOptions opts;
  opts.threads = threads;
  if (progress) {
    opts.on_done = [](const fleet::JobResult& r) {
      std::fprintf(stderr, "  [%3u] %-42s %s\n", r.id, r.label.c_str(),
                   r.verdict.c_str());
    };
  }
  const auto start = std::chrono::steady_clock::now();
  SweepOutcome out;
  out.results = fleet::run_jobs(specs, cache, opts);
  out.elapsed_ms = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - start)
                       .count();
  out.image_builds = cache.builds();
  return out;
}

void print_summary(const SweepOutcome& sweep, unsigned threads) {
  const fleet::Aggregate agg = fleet::aggregate(sweep.results);
  std::printf(
      "%llu job(s): %llu ok, %llu failed; %llu image build(s); "
      "%.0f ms elapsed, %.0f ms of job work on %u thread(s) (%.2fx)\n",
      static_cast<unsigned long long>(agg.jobs),
      static_cast<unsigned long long>(agg.ok),
      static_cast<unsigned long long>(agg.failures),
      static_cast<unsigned long long>(sweep.image_builds), sweep.elapsed_ms,
      agg.wall_ms_sum, threads,
      sweep.elapsed_ms > 0 ? agg.wall_ms_sum / sweep.elapsed_ms : 0.0);
  // Suite geomeans for whatever slice of the Figure-5 matrix ran.
  bool header = false;
  for (const wl::Suite suite : {wl::Suite::kSpec2000, wl::Suite::kSpec2006,
                                wl::Suite::kMiBench}) {
    for (const VariantDef& v : kVariants) {
      if (v.ss == passes::ShadowStackKind::kNone) continue;
      const double g = fleet::gmean_overhead(sweep.results, suite, v.ss,
                                             v.perm_seal);
      if (g < 0) continue;
      if (!header) {
        std::printf("suite overhead geomeans (%% vs baseline):\n");
        header = true;
      }
      std::printf("  %-13s %-12s %10.2f%%\n", wl::suite_name(suite), v.name,
                  g);
    }
  }
}

int mode_diff(const std::vector<std::string>& names,
              const std::string& json_path) {
  if (names.size() != 2) return usage();
  std::string text[2];
  for (int i = 0; i < 2; ++i) {
    std::ifstream in(names[i]);
    if (!in) {
      std::fprintf(stderr, "cannot read %s\n", names[i].c_str());
      return 2;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    text[i] = buf.str();
  }
  std::ostringstream log;
  const size_t diverging = fleet::diff_reports(text[0], text[1], log);
  // --json changes the output format, never the verdict: the exit code must
  // signal divergence identically in both modes (CI scripts key off it).
  if (!json_path.empty() &&
      !fleet::write_diff_report_file(json_path, names[0], names[1], diverging,
                                     log.str())) {
    std::fprintf(stderr, "cannot write diff report %s\n", json_path.c_str());
    return 2;
  }
  if (diverging == 0) {
    if (json_path.empty()) {
      std::printf("reports identical (canonical records)\n");
    }
    return 0;
  }
  if (json_path.empty()) {
    std::fputs(log.str().c_str(), stdout);
    std::printf("%zu diverging record(s)\n", diverging);
  }
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions cli;
  cli.plan.enabled = true;
  cli.plan.seed = 7;
  cli.plan.rate = 2e-5;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "sweep" || arg == "run" || arg == "diff" || arg == "list") {
      if (!cli.mode.empty()) return usage();
      cli.mode = arg;
    } else if (arg == "-q" || arg == "--quiet") {
      cli.quiet = true;
    } else if (arg == "--chaos") {
      cli.chaos = true;
    } else if (arg == "--trace") {
      cli.trace = true;
    } else if (arg.rfind("--trace-ring=", 0) == 0) {
      cli.trace_ring = std::strtoull(arg.c_str() + 13, nullptr, 0);
    } else if (arg == "--canonical") {
      cli.canonical = true;
    } else if (arg == "--selfcheck") {
      cli.selfcheck = true;
    } else if (arg == "--rollback") {
      cli.rollback = true;
    } else if (arg == "--no-pkr-save") {
      cli.no_pkr_save = true;
    } else if (arg.rfind("--threads=", 0) == 0) {
      cli.threads = static_cast<unsigned>(
          std::strtoul(arg.c_str() + 10, nullptr, 0));
    } else if (arg.rfind("--scale=", 0) == 0) {
      cli.scale = std::strtoull(arg.c_str() + 8, nullptr, 0);
    } else if (arg.rfind("--budget=", 0) == 0) {
      cli.budget = std::strtoull(arg.c_str() + 9, nullptr, 0);
    } else if (arg.rfind("--workloads=", 0) == 0) {
      cli.workloads = split_commas(arg.substr(12));
    } else if (arg.rfind("--variants=", 0) == 0) {
      cli.variants = split_commas(arg.substr(11));
    } else if (arg == "--json") {
      cli.json = true;
    } else if (arg.rfind("--json=", 0) == 0) {
      cli.json = true;
      cli.json_path = arg.substr(7);
    } else if (arg.rfind("--chaos-seed=", 0) == 0) {
      cli.plan.seed = std::strtoull(arg.c_str() + 13, nullptr, 0);
    } else if (arg.rfind("--chaos-rate=", 0) == 0) {
      cli.plan.rate = std::strtod(arg.c_str() + 13, nullptr);
    } else if (arg.rfind("--cam-rate=", 0) == 0) {
      cli.plan.cam_rate = std::strtod(arg.c_str() + 11, nullptr);
    } else if (arg.rfind("--max-faults=", 0) == 0) {
      cli.plan.max_faults = std::strtoull(arg.c_str() + 13, nullptr, 0);
    } else if (arg.rfind("--kinds=", 0) == 0) {
      if (!parse_kinds(arg.substr(8), &cli.plan.kinds)) return usage();
    } else if (arg.rfind("--ckpt-interval=", 0) == 0) {
      cli.ckpt_interval = std::strtoull(arg.c_str() + 16, nullptr, 0);
    } else if (arg.rfind("--max-rollbacks=", 0) == 0) {
      cli.max_rollbacks = std::strtoull(arg.c_str() + 16, nullptr, 0);
    } else if (!arg.empty() && arg[0] == '-') {
      return usage();
    } else {
      cli.names.push_back(arg);
    }
  }
  if (cli.mode.empty()) return usage();

  if (cli.mode == "list") {
    if (cli.json) {
      // Machine-readable workload x variant matrix for the SLO gate and
      // CI asserts; exit-code parity with the plain listing (always 0).
      std::vector<fleet::MatrixVariant> variants;
      for (const VariantDef& v : kVariants) {
        variants.push_back({v.name, v.ss, v.perm_seal});
      }
      if (cli.json_path.empty()) {
        fleet::write_matrix_json(std::cout, variants);
      } else {
        std::ofstream out(cli.json_path);
        if (!out) {
          std::fprintf(stderr, "cannot write %s\n", cli.json_path.c_str());
          return 2;
        }
        fleet::write_matrix_json(out, variants);
      }
      return 0;
    }
    std::printf("workloads:\n");
    for (const auto& w : wl::all_workloads()) {
      std::printf("  %s/%s\n", wl::suite_name(w.suite), w.name);
    }
    std::printf("variants:\n");
    for (const VariantDef& v : kVariants) std::printf("  %s\n", v.name);
    return 0;
  }
  if (cli.mode == "diff") return mode_diff(cli.names, cli.json_path);
  if (cli.mode == "run" && cli.names.empty()) return usage();

  const std::vector<fleet::JobSpec> specs = build_matrix(cli);
  if (specs.empty()) {
    std::fprintf(stderr, "no matching (workload, variant) jobs; try list\n");
    return 2;
  }

  const SweepOutcome sweep = run_matrix(specs, cli.threads, !cli.quiet);

  if (cli.selfcheck) {
    // Determinism oracle: the same matrix run serially must produce byte-
    // identical canonical records.
    const SweepOutcome serial = run_matrix(specs, 1, false);
    size_t mismatches = 0;
    for (size_t i = 0; i < specs.size(); ++i) {
      const std::string a = fleet::canonical_record(sweep.results[i]);
      const std::string b = fleet::canonical_record(serial.results[i]);
      if (a != b) {
        ++mismatches;
        std::fprintf(stderr,
                     "selfcheck: record %zu diverges\n  %u threads: %s\n"
                     "  serial:    %s\n",
                     i, cli.threads, a.c_str(), b.c_str());
      }
    }
    if (mismatches != 0) {
      std::fprintf(stderr, "selfcheck FAILED: %zu diverging record(s)\n",
                   mismatches);
      return 1;
    }
    if (!cli.quiet) {
      std::printf("selfcheck ok: %zu records byte-identical (%u threads vs "
                  "serial)\n",
                  specs.size(), cli.threads);
    }
  }

  fleet::ReportOptions ropts;
  ropts.threads = cli.threads;
  ropts.elapsed_ms = sweep.elapsed_ms;
  ropts.canonical = cli.canonical;
  if (!cli.json_path.empty() &&
      !fleet::write_report_file(cli.json_path, sweep.results, ropts)) {
    std::fprintf(stderr, "cannot write JSON report to %s\n",
                 cli.json_path.c_str());
    return 2;
  }

  const fleet::Aggregate agg = fleet::aggregate(sweep.results);
  if (!cli.quiet || agg.failures != 0) print_summary(sweep, cli.threads);
  return agg.failures == 0 ? 0 : 1;
}
