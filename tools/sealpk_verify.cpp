// sealpk-verify — static SealPK policy verifier CLI.
//
// Builds guest programs from the workload registry (optionally applying a
// shadow-stack instrumentation variant first, exactly as the Figure-5
// harness would), links them, and runs the src/analysis verifier over the
// resulting binaries. Exit status: 0 when every inspected program is
// admissible (no error-severity findings), 1 otherwise, 2 on usage errors.
//
// Usage:
//   sealpk-verify --all                      # inspect all 17 workloads
//   sealpk-verify qsort sha gzip             # inspect a subset
//   sealpk-verify --all --ss=sealpk-rdwr     # instrumented flavour
//   sealpk-verify --all --ss=sealpk-wr --seal
//   sealpk-verify --all --json               # machine-readable findings
//   sealpk-verify --all --json=out.json      # ... written to a file
//   sealpk-verify --list                     # list known workload names
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "analysis/verifier.h"
#include "passes/shadow_stack.h"
#include "workloads/workload.h"

using namespace sealpk;

namespace {

struct CliOptions {
  bool all = false;
  bool list = false;
  bool quiet = false;
  bool perm_seal = false;
  bool json = false;
  std::string json_path;  // empty: JSON goes to stdout
  passes::ShadowStackKind ss = passes::ShadowStackKind::kNone;
  std::vector<std::string> names;
  analysis::VerifyOptions verify;
};

bool parse_ss_kind(const std::string& text, passes::ShadowStackKind* out) {
  if (text == "none") *out = passes::ShadowStackKind::kNone;
  else if (text == "inline") *out = passes::ShadowStackKind::kInline;
  else if (text == "func") *out = passes::ShadowStackKind::kFunc;
  else if (text == "sealpk-wr") *out = passes::ShadowStackKind::kSealPkWr;
  else if (text == "sealpk-rdwr") *out = passes::ShadowStackKind::kSealPkRdWr;
  else if (text == "mprotect") *out = passes::ShadowStackKind::kMprotect;
  else return false;
  return true;
}

int usage() {
  std::fprintf(
      stderr,
      "usage: sealpk-verify [--all | <workload>...] [--list] [-q]\n"
      "                     [--ss=none|inline|func|sealpk-wr|sealpk-rdwr|"
      "mprotect]\n"
      "                     [--seal] [--trust=<function>]...\n"
      "                     [--json[=<path>]]\n");
  return 2;
}

struct Verified {
  std::string label;
  analysis::Report report;
};

Verified verify_one(const wl::Workload& w, const CliOptions& cli) {
  isa::Program prog = w.build(w.test_scale);
  std::string label = std::string(wl::suite_name(w.suite)) + "/" + w.name;
  if (cli.ss != passes::ShadowStackKind::kNone) {
    passes::ShadowStackOptions ss;
    ss.kind = cli.ss;
    ss.perm_seal = cli.perm_seal;
    passes::apply_shadow_stack(prog, ss);
    label += std::string(" [") + passes::shadow_stack_kind_name(cli.ss) +
             (cli.perm_seal ? ", perm-sealed]" : "]");
  }
  return {label, analysis::verify_program(prog, cli.verify)};
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions cli;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--all") {
      cli.all = true;
    } else if (arg == "--list") {
      cli.list = true;
    } else if (arg == "-q" || arg == "--quiet") {
      cli.quiet = true;
    } else if (arg == "--seal") {
      cli.perm_seal = true;
    } else if (arg.rfind("--ss=", 0) == 0) {
      if (!parse_ss_kind(arg.substr(5), &cli.ss)) return usage();
    } else if (arg.rfind("--trust=", 0) == 0) {
      cli.verify.trusted_gates.insert(arg.substr(8));
    } else if (arg == "--json") {
      cli.json = true;
    } else if (arg.rfind("--json=", 0) == 0) {
      cli.json = true;
      cli.json_path = arg.substr(7);
      if (cli.json_path.empty()) return usage();
    } else if (!arg.empty() && arg[0] == '-') {
      return usage();
    } else {
      cli.names.push_back(arg);
    }
  }

  if (cli.list) {
    for (const auto& w : wl::all_workloads()) {
      std::printf("%-10s (%s)\n", w.name, wl::suite_name(w.suite));
    }
    return 0;
  }
  if (!cli.all && cli.names.empty()) return usage();

  std::vector<Verified> results;
  for (const auto& w : wl::all_workloads()) {
    bool wanted = cli.all;
    for (const auto& name : cli.names) {
      if (name == w.name) wanted = true;
    }
    if (!wanted) continue;
    results.push_back(verify_one(w, cli));
  }
  if (results.empty()) {
    std::fprintf(stderr, "no matching workload; try --list\n");
    return 2;
  }

  size_t errors = 0;
  for (const auto& v : results) {
    errors += v.report.count(analysis::Severity::kError);
  }

  if (cli.json) {
    std::ofstream file;
    if (!cli.json_path.empty()) {
      file.open(cli.json_path);
      if (!file) {
        std::fprintf(stderr, "cannot write %s\n", cli.json_path.c_str());
        return 2;
      }
    }
    std::ostream& os = cli.json_path.empty() ? std::cout : file;
    os << "{\n  \"schema\": \"sealpk-verify-v1\",\n"
       << "  \"inspected\": " << results.size() << ",\n"
       << "  \"errors\": " << errors << ",\n"
       << "  \"programs\": [\n";
    for (size_t i = 0; i < results.size(); ++i) {
      results[i].report.print_json(os, results[i].label, "    ");
      os << (i + 1 < results.size() ? ",\n" : "\n");
    }
    os << "  ]\n}\n";
  } else {
    for (const auto& v : results) {
      if (!cli.quiet || !v.report.clean()) {
        v.report.print(std::cout, v.label);
      }
    }
    if (!cli.quiet || errors != 0) {
      std::printf("%zu program(s) inspected, %zu error finding(s)\n",
                  results.size(), errors);
    }
  }
  return errors == 0 ? 0 : 1;
}
