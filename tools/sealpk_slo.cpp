// sealpk-slo — the in-repo SLO / perf-regression gate (DESIGN.md §16).
//
// Subcommands:
//   check --spec=<SLO.json> --report=<name>=<path>...
//       Evaluate a committed SLO spec ("sealpk-slo-v1": crossings/sec
//       floors, handler-latency p99 ceilings, churn-ops/sec floors,
//       recovery-count ceilings, tolerance bands) against the repo's own
//       machine-readable reports (sealpk-serve --json, sealpk-vkey sweep
//       --json, sealpk-fleet list --json, the span bench below). Exits
//       nonzero on any breach — this is what CI runs, and what the
//       WILL_FAIL ctest pair proves actually fails on a violated spec.
//   spans [--threads=<n>] [--selfcheck] [--out=<path>]
//       The deterministic span benchmark behind BENCH_spans.json: run the
//       fixed episode suite (clean + degraded serve, vault, eager + lazy
//       vkey churn, a checkpoint/rollback episode), fold each trace into
//       causal spans (obs/span.h) and report per-kind duration quantiles
//       from the integer histogram (obs/hist.h). Everything is
//       instruction-count based, so the output is byte-identical across
//       hosts, runs and thread counts; --selfcheck re-runs serially and
//       requires byte-identity (the determinism contract CI pins by
//       regenerating + git-diffing BENCH_spans.json).
//
// Exit status: 0 ok, 1 SLO breach / selfcheck mismatch, 2 usage or I/O.
//
// Usage:
//   sealpk-slo spans --threads=4 --selfcheck --out=BENCH_spans.json -q
//   sealpk-slo check --spec=SLO.json --report=serve=serve.json \
//       --report=vkey=vkey.json --report=spans=BENCH_spans.json
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/json_parse.h"
#include "fleet/engine.h"
#include "mpk/session.h"
#include "obs/slo.h"
#include "obs/span.h"
#include "serve/server.h"
#include "snapshot/episode.h"
#include "vault/run.h"

using namespace sealpk;

namespace {

struct CliOptions {
  std::string mode;
  std::string spec_path;
  std::vector<std::pair<std::string, std::string>> reports;  // name -> path
  std::string out_path;
  bool json = false;
  std::string json_path;
  unsigned threads = 1;
  bool selfcheck = false;
  bool quiet = false;
};

int usage() {
  std::fprintf(
      stderr,
      "usage: sealpk-slo check --spec=<SLO.json> --report=<name>=<path>...\n"
      "                        [--json[=<path>]] [-q]\n"
      "       sealpk-slo spans [--threads=<n>] [--selfcheck]\n"
      "                        [--out=<path>] [-q]\n");
  return 2;
}

std::string read_text_file(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("cannot open '" + path + "'");
  std::ostringstream os;
  os << f.rdbuf();
  return os.str();
}

bool write_text_file(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << text;
  return out.good();
}

// --- spans benchmark --------------------------------------------------------

// The fixed episode suite. Shapes are pinned here — not flag-dependent —
// so a ctest invocation and the CI regeneration produce the same bytes.
struct SpanWorkload {
  const char* name;
  obs::Trace (*run)();
};

obs::Trace run_serve_clean() {
  serve::ServeConfig cfg;
  cfg.requests = 24;
  cfg.trace = true;
  return serve::run_server(cfg).trace;
}

obs::Trace run_serve_degraded() {
  serve::ServeConfig cfg;
  cfg.requests = 24;
  cfg.trace = true;
  // A runaway handler (watchdog-killed every visit) degrades its slot
  // into quarantine and pushes its requests through retry/backoff — the
  // span stream gains retry flows, quarantine points and multiple epochs
  // (= virtual-timeline segments), all deterministically.
  cfg.attack = serve::redteam::AttackKind::kRunawayHandler;
  return serve::run_server(cfg).trace;
}

obs::Trace run_vault() {
  return vault::run_vault_once(vault::VaultSpec{}, /*trace=*/true).trace;
}

obs::Trace run_vkey(bool lazy) {
  mpk::SessionConfig cfg;
  // Past the 1023-key budget, so LRU eviction (and, under --lazy, the
  // drain queue) actually runs — below it there are no evict/drain spans.
  cfg.sessions = 2048;
  cfg.ops = 4096;
  cfg.lazy_sync = lazy;
  cfg.trace = true;
  return mpk::run_session_server(cfg).trace;
}

obs::Trace run_vkey_eager() { return run_vkey(false); }
obs::Trace run_vkey_lazy() { return run_vkey(true); }

obs::Trace run_rollback() {
  return snapshot::run_rollback_episode(snapshot::EpisodeConfig{}).trace;
}

constexpr SpanWorkload kSpanWorkloads[] = {
    {"serve", run_serve_clean},
    {"serve-degraded", run_serve_degraded},
    {"vault", run_vault},
    {"vkey-eager", run_vkey_eager},
    {"vkey-lazy", run_vkey_lazy},
    {"rollback", run_rollback},
};
constexpr size_t kSpanWorkloadCount =
    sizeof(kSpanWorkloads) / sizeof(kSpanWorkloads[0]);

// One workload's slice of BENCH_spans.json. Integer-only throughout.
std::string span_cell_json(const char* name, const obs::Trace& trace) {
  const obs::SpanSet set = obs::build_spans(trace);
  const auto hists = obs::span_histograms(set);
  std::ostringstream os;
  os << "    {\"workload\": \"" << name
     << "\", \"events\": " << trace.events.size()
     << ", \"spans\": " << set.spans.size()
     << ", \"flows\": " << set.flows.size()
     << ", \"segments\": " << set.segments
     << ", \"final_ts\": " << set.final_ts << ",\n     \"by_kind\": {";
  for (u32 k = 0; k < obs::kSpanKindCount; ++k) {
    os << (k == 0 ? "\n" : ",\n") << "       \""
       << obs::span_kind_name(static_cast<obs::SpanKind>(k))
       << "\": " << hists[k].quantiles_json();
  }
  os << "}}";
  return os.str();
}

std::string run_span_bench(unsigned threads) {
  std::vector<std::string> cells(kSpanWorkloadCount);
  fleet::run_indexed(kSpanWorkloadCount, threads, [&cells](size_t i,
                                                           unsigned) {
    cells[i] = span_cell_json(kSpanWorkloads[i].name, kSpanWorkloads[i].run());
  });
  std::ostringstream os;
  os << "{\n  \"bench\": \"spans\",\n  \"schema\": \"sealpk-spans-v1\",\n"
     << "  \"workloads\": [\n";
  for (size_t i = 0; i < cells.size(); ++i) {
    os << cells[i] << (i + 1 < cells.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
  return os.str();
}

int mode_spans(const CliOptions& cli) {
  const std::string report = run_span_bench(cli.threads);
  if (cli.selfcheck) {
    // Determinism oracle: the serial re-run must be byte-identical.
    const std::string serial = run_span_bench(1);
    if (serial != report) {
      std::fprintf(stderr,
                   "selfcheck: span bench diverges between %u threads and "
                   "serial\n",
                   cli.threads);
      return 1;
    }
    if (!cli.quiet) {
      std::printf("selfcheck ok: %u-thread and serial span benches are "
                  "byte-identical\n",
                  cli.threads);
    }
  }
  if (!cli.out_path.empty()) {
    if (!write_text_file(cli.out_path, report)) {
      std::fprintf(stderr, "cannot write %s\n", cli.out_path.c_str());
      return 2;
    }
    if (!cli.quiet) std::printf("%s: span bench\n", cli.out_path.c_str());
  } else if (!cli.quiet) {
    std::printf("%s", report.c_str());
  }
  return 0;
}

// --- SLO gate ---------------------------------------------------------------

int mode_check(const CliOptions& cli) {
  if (cli.spec_path.empty() || cli.reports.empty()) return usage();
  obs::SloSpec spec;
  std::map<std::string, JsonValue> reports;
  try {
    spec = obs::parse_slo_spec(json_parse(read_text_file(cli.spec_path)));
    for (const auto& [name, path] : cli.reports) {
      reports[name] = json_parse(read_text_file(path));
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "sealpk-slo: %s\n", e.what());
    return 2;
  }
  const obs::SloVerdict verdict = obs::evaluate_slo(spec, reports);
  if (!cli.quiet) obs::write_slo_text(verdict, std::cout);
  // --json changes the output format, never the verdict: a breach exits
  // nonzero in JSON mode exactly as in plain mode (the contract the
  // WILL_FAIL ctest pair pins).
  if (cli.json) {
    if (cli.json_path.empty()) {
      obs::write_slo_json(verdict, std::cout);
    } else {
      std::ostringstream os;
      obs::write_slo_json(verdict, os);
      if (!write_text_file(cli.json_path, os.str())) {
        std::fprintf(stderr, "cannot write %s\n", cli.json_path.c_str());
        return 2;
      }
    }
  }
  return verdict.pass ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions cli;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "check" || arg == "spans") {
      if (!cli.mode.empty()) return usage();
      cli.mode = arg;
    } else if (arg == "-q" || arg == "--quiet") {
      cli.quiet = true;
    } else if (arg == "--selfcheck") {
      cli.selfcheck = true;
    } else if (arg == "--json") {
      cli.json = true;
    } else if (arg.rfind("--json=", 0) == 0) {
      cli.json = true;
      cli.json_path = arg.substr(7);
    } else if (arg.rfind("--spec=", 0) == 0) {
      cli.spec_path = arg.substr(7);
    } else if (arg.rfind("--out=", 0) == 0) {
      cli.out_path = arg.substr(6);
    } else if (arg.rfind("--threads=", 0) == 0) {
      cli.threads =
          static_cast<unsigned>(std::strtoul(arg.c_str() + 10, nullptr, 0));
    } else if (arg.rfind("--report=", 0) == 0) {
      const std::string pair = arg.substr(9);
      const size_t eq = pair.find('=');
      if (eq == std::string::npos || eq == 0 || eq + 1 == pair.size()) {
        return usage();
      }
      cli.reports.emplace_back(pair.substr(0, eq), pair.substr(eq + 1));
    } else {
      return usage();
    }
  }
  if (cli.mode == "spans") return mode_spans(cli);
  if (cli.mode == "check") return mode_check(cli);
  return usage();
}
