// sealpk-chaos — differential fault-injection oracle harness.
//
// Runs each selected workload twice: once clean and once under a seeded
// fault plan (PKR bit flips, TLB/PTE corruption, CAM refill drops and
// duplicates, spurious machine-check traps). The oracle then requires, per
// workload, that either
//   (a) the chaos run's guest-visible output (reports, console, exit code)
//       is identical to the clean run's — every fault recovered, masked, or
//       absorbed by a snapshot rollback; or
//   (b) the machine recorded an explicit recovery or killed the affected
//       process with a distinct robustness exit code.
// In addition every injected fault event must be resolved by the end of the
// run (recovered / killed / masked-benign — never unaccounted), and no host
// exception may escape Machine::run.
//
// The sweep executes on the fleet batch engine (src/fleet): --threads=N
// drains the per-workload differential jobs on a worker pool (each job owns
// its two Machines; the linked image is built once and shared read-only),
// and per-workload verdicts are byte-identical for any thread count.
//
// --rollback arms periodic checkpointing with snapshot-rollback recovery:
// unrecoverable machine checks restore the last known-good checkpoint and
// re-execute with the offending injections suppressed, so scenarios that
// would otherwise kill the process instead finish with output identical to
// the clean run (the bit-identical oracle above then applies).
//
// --json <path> writes a machine-readable summary: per-workload verdicts,
// clean and chaos exit codes, per-job wall-clock milliseconds, rollback
// counts, and the full per-fault event log with each event's resolution.
//
// Exit status: 0 when every workload satisfies the oracle, 1 otherwise,
// 2 on usage errors.
//
// Usage:
//   sealpk-chaos --all --chaos-seed=7 --chaos-rate=2e-5
//   sealpk-chaos qsort sha --chaos-rate=1e-4 -q --threads=4
//   sealpk-chaos --all --ss=sealpk-wr --seal --cam-rate=0.3
//   sealpk-chaos --all --rollback --no-pkr-save --kinds=pkr --json=out.json
//   sealpk-chaos --list
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "fleet/engine.h"
#include "fleet/report.h"
#include "passes/shadow_stack.h"
#include "sim/machine.h"
#include "workloads/workload.h"

using namespace sealpk;

namespace {

struct CliOptions {
  bool all = false;
  bool list = false;
  bool quiet = false;
  bool perm_seal = false;
  bool rollback = false;
  bool no_pkr_save = false;
  unsigned threads = 1;
  u64 ckpt_interval = 0;  // 0 = default (when --rollback) or off
  u64 max_rollbacks = 3;
  std::string json_path;
  passes::ShadowStackKind ss = passes::ShadowStackKind::kNone;
  std::vector<std::string> names;
  fault::FaultPlan plan;
};

bool parse_ss_kind(const std::string& text, passes::ShadowStackKind* out) {
  if (text == "none") *out = passes::ShadowStackKind::kNone;
  else if (text == "inline") *out = passes::ShadowStackKind::kInline;
  else if (text == "func") *out = passes::ShadowStackKind::kFunc;
  else if (text == "sealpk-wr") *out = passes::ShadowStackKind::kSealPkWr;
  else if (text == "sealpk-rdwr") *out = passes::ShadowStackKind::kSealPkRdWr;
  else if (text == "mprotect") *out = passes::ShadowStackKind::kMprotect;
  else return false;
  return true;
}

// Comma-separated fault-kind mask: pkr,tlb,pte,cam-drop,cam-dup,trap,all.
bool parse_kinds(const std::string& text, u32* out) {
  u32 mask = 0;
  std::stringstream ss(text);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (item == "all") mask |= fault::kAllFaultKinds;
    else if (item == "pkr") mask |= kind_bit(fault::FaultKind::kPkrBitFlip);
    else if (item == "tlb") mask |= kind_bit(fault::FaultKind::kTlbCorrupt);
    else if (item == "pte") mask |= kind_bit(fault::FaultKind::kPteCorrupt);
    else if (item == "cam-drop")
      mask |= kind_bit(fault::FaultKind::kCamDropRefill);
    else if (item == "cam-dup")
      mask |= kind_bit(fault::FaultKind::kCamDupRefill);
    else if (item == "trap") mask |= kind_bit(fault::FaultKind::kSpuriousTrap);
    else return false;
  }
  if (mask == 0) return false;
  *out = mask;
  return true;
}

const char* resolution_name(fault::FaultResolution r) {
  switch (r) {
    case fault::FaultResolution::kOutstanding: return "outstanding";
    case fault::FaultResolution::kRecovered: return "recovered";
    case fault::FaultResolution::kProcessKilled: return "process-killed";
    case fault::FaultResolution::kMaskedBenign: return "masked-benign";
  }
  return "unknown";
}

// The one source of truth for fault-kind spellings: parse_kinds accepts
// exactly these names, `--kinds` without an argument and `--help` print
// them, so the list can never drift from the parser.
constexpr const char* kKindNames[] = {"pkr",      "tlb",     "pte", "cam-drop",
                                      "cam-dup", "trap",    "all"};

void print_kind_names(std::FILE* out) {
  std::fprintf(out, "fault kinds:");
  for (const char* name : kKindNames) std::fprintf(out, " %s", name);
  std::fprintf(out, "\n");
}

int print_usage(std::FILE* out) {
  std::fprintf(
      out,
      "usage: sealpk-chaos [--all | <workload>...] [--list] [-q] [--help]\n"
      "                    [--threads=<n>]\n"
      "                    [--chaos-seed=<n>] [--chaos-rate=<p>]\n"
      "                    [--cam-rate=<p>] [--max-faults=<n>]\n"
      "                    [--kinds=<kind>[,<kind>...]] [--kinds]\n"
      "                    [--rollback] [--ckpt-interval=<n>]\n"
      "                    [--max-rollbacks=<n>] [--no-pkr-save]\n"
      "                    [--json=<path>]\n"
      "                    [--ss=none|inline|func|sealpk-wr|sealpk-rdwr|"
      "mprotect] [--seal]\n");
  print_kind_names(out);
  return out == stderr ? 2 : 0;
}

int usage() { return print_usage(stderr); }

sim::MachineConfig base_config(const CliOptions& cli) {
  sim::MachineConfig config;
  if (cli.no_pkr_save) config.kernel.save_pkr_on_switch = false;
  if (cli.rollback || cli.ckpt_interval != 0) {
    config.checkpoint_interval =
        cli.ckpt_interval != 0 ? cli.ckpt_interval : 25'000;
    config.max_rollbacks = cli.max_rollbacks;
  }
  return config;
}

void json_escape(std::ostream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

bool write_json(const std::string& path, const CliOptions& cli,
                const std::vector<fleet::JobResult>& results,
                size_t failures, double elapsed_ms) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  u64 total_faults = 0;
  for (const auto& r : results) total_faults += r.injected;
  out << "{\n";
  out << "  \"plan\": {\"seed\": " << cli.plan.seed
      << ", \"rate\": " << cli.plan.rate
      << ", \"cam_rate\": " << cli.plan.cam_rate
      << ", \"max_faults\": " << cli.plan.max_faults
      << ", \"kinds\": " << cli.plan.kinds << "},\n";
  out << "  \"rollback\": " << (cli.rollback ? "true" : "false")
      << ", \"checkpoint_interval\": "
      << base_config(cli).checkpoint_interval
      << ", \"max_rollbacks\": " << cli.max_rollbacks << ",\n";
  char elapsed[64];
  std::snprintf(elapsed, sizeof(elapsed), "%.3f", elapsed_ms);
  out << "  \"threads\": " << cli.threads << ", \"elapsed_ms\": " << elapsed
      << ",\n";
  out << "  \"programs\": " << results.size()
      << ", \"failures\": " << failures
      << ", \"total_faults\": " << total_faults << ",\n";
  out << "  \"workloads\": [\n";
  for (size_t i = 0; i < results.size(); ++i) {
    const fleet::JobResult& r = results[i];
    out << "    {\"label\": ";
    json_escape(out, r.label);
    out << ", \"ok\": " << (r.ok ? "true" : "false") << ", \"verdict\": ";
    json_escape(out, r.verdict);
    char wall[64];
    std::snprintf(wall, sizeof(wall), "%.3f", r.wall_ms);
    out << ",\n     \"clean_exit\": " << r.clean_exit
        << ", \"chaos_exit\": " << r.exit_code
        << ", \"completed\": " << (r.completed ? "true" : "false")
        << ", \"wall_ms\": " << wall
        << ", \"injected\": " << r.injected
        << ", \"outstanding\": " << r.outstanding << ",\n";
    out << "     \"recoveries\": " << r.stats.recoveries
        << ", \"machine_check_kills\": " << r.stats.machine_check_kills
        << ", \"watchdog_kills\": " << r.stats.watchdog_kills
        << ", \"checkpoints\": " << r.stats.checkpoints
        << ", \"rollbacks\": " << r.stats.rollbacks
        << ", \"rollback_failures\": " << r.stats.rollback_failures << ",\n";
    out << "     \"faults\": [";
    for (size_t j = 0; j < r.events.size(); ++j) {
      const fault::FaultEvent& e = r.events[j];
      if (j != 0) out << ", ";
      out << "{\"kind\": \"" << fault_kind_name(e.kind)
          << "\", \"instret\": " << e.instret << ", \"resolution\": \""
          << resolution_name(e.resolution) << "\"}";
    }
    out << "]}" << (i + 1 < results.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  out.flush();
  return static_cast<bool>(out);
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions cli;
  cli.plan.enabled = true;
  cli.plan.seed = 7;
  cli.plan.rate = 2e-5;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--all") {
      cli.all = true;
    } else if (arg == "--list") {
      cli.list = true;
    } else if (arg == "-q" || arg == "--quiet") {
      cli.quiet = true;
    } else if (arg == "--seal") {
      cli.perm_seal = true;
    } else if (arg == "--rollback") {
      cli.rollback = true;
    } else if (arg == "--no-pkr-save") {
      cli.no_pkr_save = true;
    } else if (arg.rfind("--threads=", 0) == 0) {
      cli.threads = static_cast<unsigned>(
          std::strtoul(arg.c_str() + 10, nullptr, 0));
    } else if (arg.rfind("--ss=", 0) == 0) {
      if (!parse_ss_kind(arg.substr(5), &cli.ss)) return usage();
    } else if (arg.rfind("--chaos-seed=", 0) == 0) {
      cli.plan.seed = std::strtoull(arg.c_str() + 13, nullptr, 0);
    } else if (arg.rfind("--chaos-rate=", 0) == 0) {
      cli.plan.rate = std::strtod(arg.c_str() + 13, nullptr);
    } else if (arg.rfind("--cam-rate=", 0) == 0) {
      cli.plan.cam_rate = std::strtod(arg.c_str() + 11, nullptr);
    } else if (arg.rfind("--max-faults=", 0) == 0) {
      cli.plan.max_faults = std::strtoull(arg.c_str() + 13, nullptr, 0);
    } else if (arg == "--kinds" || arg == "--kinds=") {
      // Bare --kinds is a query, not an error: print the valid names.
      print_kind_names(stdout);
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      return print_usage(stdout);
    } else if (arg.rfind("--kinds=", 0) == 0) {
      if (!parse_kinds(arg.substr(8), &cli.plan.kinds)) return usage();
    } else if (arg.rfind("--ckpt-interval=", 0) == 0) {
      cli.ckpt_interval = std::strtoull(arg.c_str() + 16, nullptr, 0);
    } else if (arg.rfind("--max-rollbacks=", 0) == 0) {
      cli.max_rollbacks = std::strtoull(arg.c_str() + 16, nullptr, 0);
    } else if (arg.rfind("--json=", 0) == 0) {
      cli.json_path = arg.substr(7);
    } else if (!arg.empty() && arg[0] == '-') {
      return usage();
    } else {
      cli.names.push_back(arg);
    }
  }

  if (cli.list) {
    for (const auto& w : wl::all_workloads()) {
      std::printf("%-10s (%s)\n", w.name, wl::suite_name(w.suite));
    }
    return 0;
  }
  if (!cli.all && cli.names.empty()) return usage();

  // One differential job per selected workload, drained by the fleet pool.
  std::vector<fleet::JobSpec> specs;
  for (const auto& w : wl::all_workloads()) {
    bool wanted = cli.all;
    for (const auto& name : cli.names) {
      if (name == w.name) wanted = true;
    }
    if (!wanted) continue;
    fleet::JobSpec spec;
    spec.id = static_cast<u32>(specs.size());
    spec.workload = &w;
    spec.ss = cli.ss;
    spec.perm_seal = cli.perm_seal;
    spec.scale = w.test_scale;
    spec.budget = 400'000'000;
    spec.kind = fleet::JobKind::kChaosDiff;
    spec.config = base_config(cli);
    spec.config.fault_plan = cli.plan;
    specs.push_back(std::move(spec));
  }
  if (specs.empty()) {
    std::fprintf(stderr, "no matching workload; try --list\n");
    return 2;
  }

  fleet::ImageCache cache;
  fleet::FleetOptions opts;
  opts.threads = cli.threads;
  const auto start = std::chrono::steady_clock::now();
  const std::vector<fleet::JobResult> results =
      fleet::run_jobs(specs, cache, opts);
  const double elapsed_ms = std::chrono::duration<double, std::milli>(
                                std::chrono::steady_clock::now() - start)
                                .count();

  size_t failures = 0;
  u64 total_faults = 0;
  for (const fleet::JobResult& r : results) {
    if (!r.ok) ++failures;
    total_faults += r.injected;
    if (!cli.quiet || !r.ok) {
      const u64 kills =
          r.stats.machine_check_kills + r.stats.watchdog_kills;
      std::printf(
          "%-28s %-40s faults=%llu recoveries=%llu kills=%llu rollbacks=%llu\n",
          r.label.c_str(), r.verdict.c_str(),
          static_cast<unsigned long long>(r.injected),
          static_cast<unsigned long long>(r.stats.recoveries),
          static_cast<unsigned long long>(kills),
          static_cast<unsigned long long>(r.stats.rollbacks));
    }
  }

  if (!cli.json_path.empty() &&
      !write_json(cli.json_path, cli, results, failures, elapsed_ms)) {
    std::fprintf(stderr, "cannot write JSON summary to %s\n",
                 cli.json_path.c_str());
    return 2;
  }
  if (!cli.quiet || failures != 0) {
    std::printf(
        "%zu program(s) checked, %llu fault(s) injected, %zu failure(s)\n",
        results.size(), static_cast<unsigned long long>(total_faults),
        failures);
  }
  return failures == 0 ? 0 : 1;
}
