// sealpk-chaos — differential fault-injection oracle harness.
//
// Runs each selected workload twice: once clean and once under a seeded
// fault plan (PKR bit flips, TLB/PTE corruption, CAM refill drops and
// duplicates, spurious machine-check traps). The oracle then requires, per
// workload, that either
//   (a) the chaos run's guest-visible output (reports, console, exit code)
//       is identical to the clean run's — every fault recovered or masked; or
//   (b) the machine recorded an explicit recovery or killed the affected
//       process with a distinct robustness exit code.
// In addition every injected fault event must be resolved by the end of the
// run (recovered / killed / masked-benign — never unaccounted), and no host
// exception may escape Machine::run.
//
// Exit status: 0 when every workload satisfies the oracle, 1 otherwise,
// 2 on usage errors.
//
// Usage:
//   sealpk-chaos --all --chaos-seed=7 --chaos-rate=2e-5
//   sealpk-chaos qsort sha --chaos-rate=1e-4 -q
//   sealpk-chaos --all --ss=sealpk-wr --seal --cam-rate=0.3
//   sealpk-chaos --list
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <string>
#include <vector>

#include "passes/shadow_stack.h"
#include "sim/machine.h"
#include "sim/stats.h"
#include "workloads/workload.h"

using namespace sealpk;

namespace {

struct CliOptions {
  bool all = false;
  bool list = false;
  bool quiet = false;
  bool perm_seal = false;
  passes::ShadowStackKind ss = passes::ShadowStackKind::kNone;
  std::vector<std::string> names;
  fault::FaultPlan plan;
};

struct RunResult {
  bool completed = false;
  i64 exit_code = 0;
  std::string console;
  std::vector<u64> reports;
  os::KernelStats stats;
  u64 injected = 0;
  u64 outstanding = 0;
};

bool parse_ss_kind(const std::string& text, passes::ShadowStackKind* out) {
  if (text == "none") *out = passes::ShadowStackKind::kNone;
  else if (text == "inline") *out = passes::ShadowStackKind::kInline;
  else if (text == "func") *out = passes::ShadowStackKind::kFunc;
  else if (text == "sealpk-wr") *out = passes::ShadowStackKind::kSealPkWr;
  else if (text == "sealpk-rdwr") *out = passes::ShadowStackKind::kSealPkRdWr;
  else if (text == "mprotect") *out = passes::ShadowStackKind::kMprotect;
  else return false;
  return true;
}

int usage() {
  std::fprintf(
      stderr,
      "usage: sealpk-chaos [--all | <workload>...] [--list] [-q]\n"
      "                    [--chaos-seed=<n>] [--chaos-rate=<p>]\n"
      "                    [--cam-rate=<p>] [--max-faults=<n>]\n"
      "                    [--ss=none|inline|func|sealpk-wr|sealpk-rdwr|"
      "mprotect] [--seal]\n");
  return 2;
}

RunResult run_image(const isa::Image& image, const fault::FaultPlan& plan) {
  sim::MachineConfig config;
  config.fault_plan = plan;
  sim::Machine machine(config);
  const int pid = machine.load(image);
  RunResult result;
  if (pid == sim::Machine::kLoadRefused) {
    result.exit_code = sim::Machine::kNoExitCode;
    return result;
  }
  result.completed = machine.run(400'000'000).completed;
  result.exit_code = machine.exit_code(pid);
  result.console = machine.kernel().console();
  result.reports = machine.kernel().reports();
  result.stats = machine.kernel().stats();
  if (machine.injector() != nullptr) {
    result.injected = machine.injector()->total_injected();
    result.outstanding = machine.injector()->outstanding();
  }
  return result;
}

// Returns true when the chaos run satisfies the differential oracle.
bool check_one(const wl::Workload& w, const CliOptions& cli, u64* injected) {
  isa::Program prog = w.build(w.test_scale);
  std::string label = std::string(wl::suite_name(w.suite)) + "/" + w.name;
  if (cli.ss != passes::ShadowStackKind::kNone) {
    passes::ShadowStackOptions ss;
    ss.kind = cli.ss;
    ss.perm_seal = cli.perm_seal;
    passes::apply_shadow_stack(prog, ss);
    label += std::string(" [") + passes::shadow_stack_kind_name(cli.ss) +
             (cli.perm_seal ? ", perm-sealed]" : "]");
  }
  const isa::Image image = prog.link();

  RunResult clean;
  RunResult chaos;
  try {
    clean = run_image(image, {});
    chaos = run_image(image, cli.plan);
  } catch (const std::exception& e) {
    std::printf("%-28s FAIL: host exception escaped: %s\n", label.c_str(),
                e.what());
    return false;
  }
  *injected = chaos.injected;

  const bool identical = chaos.completed == clean.completed &&
                         chaos.exit_code == clean.exit_code &&
                         chaos.console == clean.console &&
                         chaos.reports == clean.reports;
  const u64 kills =
      chaos.stats.machine_check_kills + chaos.stats.watchdog_kills;
  const u64 recoveries = chaos.stats.recoveries();

  const char* verdict = nullptr;
  bool ok = true;
  if (!clean.completed) {
    verdict = "FAIL: clean run did not complete";
    ok = false;
  } else if (chaos.outstanding != 0) {
    verdict = "FAIL: unaccounted fault events";
    ok = false;
  } else if (identical) {
    verdict = chaos.injected == 0 ? "ok (no faults fired)"
                                  : "ok (output identical)";
  } else if (kills > 0) {
    verdict = "ok (process killed, distinct exit code)";
    ok = chaos.exit_code == os::kExitMachineCheck ||
         chaos.exit_code == os::kExitTrapStorm ||
         chaos.exit_code == os::kExitLivelock ||
         chaos.exit_code == clean.exit_code;  // kill hit a since-respawned run
    if (!ok) verdict = "FAIL: killed without a distinct exit code";
  } else if (recoveries > 0) {
    verdict = "ok (divergence, recovery recorded)";
  } else {
    verdict = "FAIL: output diverged with no recovery or kill recorded";
    ok = false;
  }

  if (!cli.quiet || !ok) {
    std::printf("%-28s %-40s faults=%llu recoveries=%llu kills=%llu\n",
                label.c_str(), verdict,
                static_cast<unsigned long long>(chaos.injected),
                static_cast<unsigned long long>(recoveries),
                static_cast<unsigned long long>(kills));
  }
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions cli;
  cli.plan.enabled = true;
  cli.plan.seed = 7;
  cli.plan.rate = 2e-5;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--all") {
      cli.all = true;
    } else if (arg == "--list") {
      cli.list = true;
    } else if (arg == "-q" || arg == "--quiet") {
      cli.quiet = true;
    } else if (arg == "--seal") {
      cli.perm_seal = true;
    } else if (arg.rfind("--ss=", 0) == 0) {
      if (!parse_ss_kind(arg.substr(5), &cli.ss)) return usage();
    } else if (arg.rfind("--chaos-seed=", 0) == 0) {
      cli.plan.seed = std::strtoull(arg.c_str() + 13, nullptr, 0);
    } else if (arg.rfind("--chaos-rate=", 0) == 0) {
      cli.plan.rate = std::strtod(arg.c_str() + 13, nullptr);
    } else if (arg.rfind("--cam-rate=", 0) == 0) {
      cli.plan.cam_rate = std::strtod(arg.c_str() + 11, nullptr);
    } else if (arg.rfind("--max-faults=", 0) == 0) {
      cli.plan.max_faults = std::strtoull(arg.c_str() + 13, nullptr, 0);
    } else if (!arg.empty() && arg[0] == '-') {
      return usage();
    } else {
      cli.names.push_back(arg);
    }
  }

  if (cli.list) {
    for (const auto& w : wl::all_workloads()) {
      std::printf("%-10s (%s)\n", w.name, wl::suite_name(w.suite));
    }
    return 0;
  }
  if (!cli.all && cli.names.empty()) return usage();

  size_t programs = 0;
  size_t failures = 0;
  u64 total_faults = 0;
  for (const auto& w : wl::all_workloads()) {
    bool wanted = cli.all;
    for (const auto& name : cli.names) {
      if (name == w.name) wanted = true;
    }
    if (!wanted) continue;
    ++programs;
    u64 injected = 0;
    if (!check_one(w, cli, &injected)) ++failures;
    total_faults += injected;
  }
  if (programs == 0) {
    std::fprintf(stderr, "no matching workload; try --list\n");
    return 2;
  }
  if (!cli.quiet || failures != 0) {
    std::printf(
        "%zu program(s) checked, %llu fault(s) injected, %zu failure(s)\n",
        programs, static_cast<unsigned long long>(total_faults), failures);
  }
  return failures == 0 ? 0 : 1;
}
