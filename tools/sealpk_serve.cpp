// sealpk-serve — in-process sandboxed plugin server workbench (src/serve).
//
// A trusted monitor domain dispatches a seeded synthetic request stream to
// untrusted handler domains through perm-sealed call gates, reporting
// domain-crossings/sec and per-handler latency (in instructions) alongside
// the Fig-5 overhead numbers. The request plane degrades gracefully:
// per-request instruction budgets, strike-based handler quarantine, bounded
// retry with deterministic backoff onto the replica slot, and load shedding
// — every request ends in exactly one canonical disposition.
//
// Modes:
//   run                  clean serving run
//   attack <name>|--all  run with a red-team plugin planted in handler 0;
//                        exits 1 unless the attack's declared catcher fired
//                        AND the monitor survived AND serving continued
//   list                 print the attack registry (name, catcher, what)
//
// --chaos composes the FaultInjector on top of any mode (seeded PKR
// upsets); the canonical ledger stays byte-identical for a fixed config.
// `attack --all --threads=N` drains the suite through the fleet worker
// pool; ledgers and reports are byte-identical for any N. --json writes
// the machine-readable report (array form for --all). --trace-out records
// gate entry/exit, dispositions and quarantine transitions per handler and
// exports Perfetto JSON (open in ui.perfetto.dev, or feed the same events
// through sealpk-trace).
//
// Exit status: 0 ok, 1 attack escaped / monitor died / request lost,
// 2 usage or I/O error.
//
// Usage:
//   sealpk-serve run --requests=64 --primaries=3 --json=serve.json
//   sealpk-serve attack gate-exit-hijack --trace-out=hijack.perfetto.json
//   sealpk-serve attack --all --threads=4 --json=redteam.json
//   sealpk-serve run --chaos --chaos-seed=11 --chaos-rate=1e-4
#include <cstdio>
#include <cstring>
#include <fstream>
#include <mutex>
#include <sstream>
#include <string>
#include <vector>

#include "fleet/engine.h"
#include "obs/export.h"
#include "serve/redteam.h"
#include "serve/server.h"

using namespace sealpk;

namespace {

struct CliOptions {
  std::string mode;
  std::string attack_name;
  bool all_attacks = false;
  unsigned threads = 1;
  bool quiet = false;
  std::string json_path;
  std::string trace_path;
  serve::ServeConfig cfg;
};

int usage() {
  std::fprintf(
      stderr,
      "usage: sealpk-serve run [options]\n"
      "       sealpk-serve attack <name>|--all [options]\n"
      "       sealpk-serve list\n"
      "options:\n"
      "  --primaries=<n> --requests=<n> --rounds=<n> --seed=<n>\n"
      "  --budget=<instructions> --max-attempts=<n> --strike-limit=<n>\n"
      "  --threads=<n>            worker pool for `attack --all`\n"
      "  --chaos --chaos-seed=<n> --chaos-rate=<p> --max-faults=<n>\n"
      "  --json=<path>            machine-readable report (array for --all)\n"
      "  --trace-out=<path>       Perfetto JSON of the obs event stream\n"
      "  -q                       suppress the per-run summary\n");
  return 2;
}

void print_summary(const serve::ServeConfig& cfg, const serve::ServeResult& r,
                   const char* label) {
  std::printf(
      "%-22s served=%llu retried=%llu shed=%llu quarantined=%llu "
      "crossings=%llu (%.0f/sec) epochs=%llu instructions=%llu\n",
      label, static_cast<unsigned long long>(r.served),
      static_cast<unsigned long long>(r.retried),
      static_cast<unsigned long long>(r.shed),
      static_cast<unsigned long long>(r.quarantined),
      static_cast<unsigned long long>(r.crossings), r.crossings_per_sec(),
      static_cast<unsigned long long>(r.epochs),
      static_cast<unsigned long long>(r.instructions));
  u64 latency_sum = 0, latency_n = 0;
  for (const auto& rec : r.records) {
    if (rec.latency != 0) {
      latency_sum += rec.latency;
      ++latency_n;
    }
  }
  if (latency_n != 0) {
    std::printf("%-22s mean handler latency %llu instructions over %llu "
                "crossings\n",
                "", static_cast<unsigned long long>(latency_sum / latency_n),
                static_cast<unsigned long long>(latency_n));
  }
  if (r.attack != nullptr) {
    std::printf("%-22s catcher=%s %s monitor=%s canary=%s\n", "",
                serve::redteam::catcher_name(r.attack->catcher),
                r.attack_caught ? "CAUGHT" : "ESCAPED",
                r.monitor_alive ? "alive" : "DEAD",
                r.canary_intact ? "intact" : "CLOBBERED");
  }
  (void)cfg;
}

// 0 when the run upholds the contract this tool exists to demonstrate:
// config asserts passed, the monitor survived, no probe landed, and — for
// attack runs — the declared catcher fired.
int verdict(const serve::ServeResult& r) {
  if (!r.config_ok || !r.monitor_alive || !r.canary_intact) return 1;
  if (r.evidence.probe_successes != 0) return 1;
  if (r.attack != nullptr && !r.attack_caught) return 1;
  return 0;
}

bool write_text_file(const std::string& path, const std::string& text) {
  std::ofstream out(path);
  if (!out) return false;
  out << text;
  return out.good();
}

bool export_trace(const serve::ServeResult& r, const std::string& path) {
  std::ostringstream os;
  obs::write_perfetto_json(r.trace, os);
  return write_text_file(path, os.str());
}

int mode_list() {
  for (const auto& atk : serve::redteam::attacks()) {
    std::printf("%-20s caught-by=%-8s %s\n", atk.name,
                serve::redteam::catcher_name(atk.catcher), atk.description);
  }
  return 0;
}

int run_one(const CliOptions& cli) {
  serve::ServeConfig cfg = cli.cfg;
  if (!cli.trace_path.empty()) cfg.trace = true;
  if (!cli.attack_name.empty()) {
    const serve::redteam::Attack* atk =
        serve::redteam::find_attack(cli.attack_name);
    if (atk == nullptr) {
      std::fprintf(stderr, "unknown attack '%s' (see `sealpk-serve list`)\n",
                   cli.attack_name.c_str());
      return 2;
    }
    cfg.attack = atk->kind;
  }
  const serve::ServeResult r = serve::run_server(cfg);
  if (!cli.quiet) {
    print_summary(cfg, r,
                  cli.attack_name.empty() ? "clean" : cli.attack_name.c_str());
  }
  if (!cli.json_path.empty()) {
    std::ostringstream os;
    serve::write_result_json(os, cfg, r);
    if (!write_text_file(cli.json_path, os.str())) {
      std::fprintf(stderr, "cannot write %s\n", cli.json_path.c_str());
      return 2;
    }
  }
  if (!cli.trace_path.empty() && !export_trace(r, cli.trace_path)) {
    std::fprintf(stderr, "cannot write %s\n", cli.trace_path.c_str());
    return 2;
  }
  return verdict(r);
}

// The whole registry drained by the fleet worker pool; per-attack reports
// and the exit verdict are byte-identical for any --threads value.
int run_all(const CliOptions& cli) {
  const auto& registry = serve::redteam::attacks();
  std::vector<serve::ServeResult> results(registry.size());
  std::vector<serve::ServeConfig> cfgs(registry.size());
  for (size_t i = 0; i < registry.size(); ++i) {
    cfgs[i] = cli.cfg;
    cfgs[i].attack = registry[i].kind;
  }
  fleet::run_indexed(registry.size(), cli.threads,
                     [&](size_t i, unsigned) {
                       results[i] = serve::run_server(cfgs[i]);
                     });

  int rc = 0;
  for (size_t i = 0; i < registry.size(); ++i) {
    if (!cli.quiet) print_summary(cfgs[i], results[i], registry[i].name);
    if (verdict(results[i]) != 0) rc = 1;
  }
  if (!cli.json_path.empty()) {
    std::ostringstream os;
    os << "[\n";
    for (size_t i = 0; i < registry.size(); ++i) {
      serve::write_result_json(os, cfgs[i], results[i]);
      os << (i + 1 < registry.size() ? ",\n" : "\n");
    }
    os << "]\n";
    if (!write_text_file(cli.json_path, os.str())) {
      std::fprintf(stderr, "cannot write %s\n", cli.json_path.c_str());
      return 2;
    }
  }
  if (!cli.quiet) {
    std::printf("%s: %zu attack(s), %s\n", "red team", registry.size(),
                rc == 0 ? "all caught by their declared catcher"
                        : "ESCAPE OR MONITOR LOSS — see above");
  }
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions cli;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "run" || arg == "attack" || arg == "list") {
      if (!cli.mode.empty()) return usage();
      cli.mode = arg;
    } else if (arg == "--all") {
      cli.all_attacks = true;
    } else if (arg == "-q" || arg == "--quiet") {
      cli.quiet = true;
    } else if (arg == "--chaos") {
      cli.cfg.chaos.enabled = true;
    } else if (arg.rfind("--primaries=", 0) == 0) {
      cli.cfg.primaries =
          static_cast<u32>(std::strtoul(arg.c_str() + 12, nullptr, 0));
    } else if (arg.rfind("--requests=", 0) == 0) {
      cli.cfg.requests =
          static_cast<u32>(std::strtoul(arg.c_str() + 11, nullptr, 0));
    } else if (arg.rfind("--rounds=", 0) == 0) {
      cli.cfg.rounds =
          static_cast<u32>(std::strtoul(arg.c_str() + 9, nullptr, 0));
    } else if (arg.rfind("--seed=", 0) == 0) {
      cli.cfg.seed = std::strtoull(arg.c_str() + 7, nullptr, 0);
    } else if (arg.rfind("--budget=", 0) == 0) {
      cli.cfg.request_budget = std::strtoull(arg.c_str() + 9, nullptr, 0);
    } else if (arg.rfind("--max-attempts=", 0) == 0) {
      cli.cfg.max_attempts =
          static_cast<u32>(std::strtoul(arg.c_str() + 15, nullptr, 0));
    } else if (arg.rfind("--strike-limit=", 0) == 0) {
      cli.cfg.strike_limit =
          static_cast<u32>(std::strtoul(arg.c_str() + 15, nullptr, 0));
    } else if (arg.rfind("--threads=", 0) == 0) {
      cli.threads =
          static_cast<unsigned>(std::strtoul(arg.c_str() + 10, nullptr, 0));
    } else if (arg.rfind("--chaos-seed=", 0) == 0) {
      cli.cfg.chaos.seed = std::strtoull(arg.c_str() + 13, nullptr, 0);
    } else if (arg.rfind("--chaos-rate=", 0) == 0) {
      cli.cfg.chaos.rate = std::strtod(arg.c_str() + 13, nullptr);
    } else if (arg.rfind("--max-faults=", 0) == 0) {
      cli.cfg.chaos.max_faults = std::strtoull(arg.c_str() + 13, nullptr, 0);
    } else if (arg.rfind("--json=", 0) == 0) {
      cli.json_path = arg.substr(7);
    } else if (arg.rfind("--trace-out=", 0) == 0) {
      cli.trace_path = arg.substr(12);
    } else if (!arg.empty() && arg[0] == '-') {
      return usage();
    } else if (cli.mode == "attack" && cli.attack_name.empty()) {
      cli.attack_name = arg;
    } else {
      return usage();
    }
  }

  if (cli.mode == "list") return mode_list();
  if (cli.mode == "run") return run_one(cli);
  if (cli.mode == "attack") {
    if (cli.all_attacks) return run_all(cli);
    if (cli.attack_name.empty()) return usage();
    return run_one(cli);
  }
  return usage();
}
