// sealpk-snapshot — checkpoint/restore workbench for the simulated machine.
//
// Subcommands:
//   save <workload> --at=<instret> [--out=<file>]
//       Build the workload, run it to the given retired-instruction point,
//       serialize the full machine and write the snapshot file.
//   restore <file> [--expect-exit=<code>]
//       Rebuild a machine from the snapshot's embedded config, restore, run
//       to completion and print the guest outcome. With --expect-exit the
//       process exit code is checked (exit status 1 on mismatch).
//   replay <workload> --at=<instret>
//       Determinism oracle: run the workload uninterrupted to completion and
//       snapshot the final state; then run it again but save/restore through
//       a snapshot at the given point before finishing. The two final
//       snapshots must be bit-identical.
//   diff <a> <b>
//       Section-level comparison of two snapshot files (exit status 1 when
//       they differ).
//   info <file>
//       Header, checksum and section table of a snapshot file.
//
// info and diff accept --json[=<path>] for a machine-readable view (the
// same contract as the chaos/fleet/verify/serve tools): the flag changes
// the output format only, never the exit code.
//
// Workload construction accepts the same shaping flags as sealpk-chaos
// (--ss=, --seal) plus a fault plan (--chaos-seed/--chaos-rate/--cam-rate/
// --max-faults), so replay can prove determinism *under fault injection*:
// the injector's RNG stream and event log travel inside the snapshot.
//
// Exit status: 0 success, 1 oracle/check failure, 2 usage or I/O errors.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/json.h"
#include "passes/shadow_stack.h"
#include "sim/machine.h"
#include "snapshot/snapshot.h"
#include "workloads/workload.h"

using namespace sealpk;

namespace {

struct CliOptions {
  std::string command;
  std::vector<std::string> positional;
  std::string out;
  u64 at = 0;
  bool have_at = false;
  i64 expect_exit = 0;
  bool have_expect_exit = false;
  bool quiet = false;
  bool perm_seal = false;
  bool json = false;      // machine-readable info/diff output
  std::string json_out;   // empty = stdout
  passes::ShadowStackKind ss = passes::ShadowStackKind::kNone;
  fault::FaultPlan plan;  // disabled unless a --chaos-* flag appears
};

// --json changes the output format, never the verdict: callers still rely
// on the exit code (same contract as sealpk-fleet diff --json).
int emit_json(const CliOptions& cli, const std::string& text) {
  if (cli.json_out.empty()) {
    std::fputs(text.c_str(), stdout);
    return 0;
  }
  std::ofstream f(cli.json_out, std::ios::trunc);
  if (!f) {
    std::fprintf(stderr, "cannot open '%s'\n", cli.json_out.c_str());
    return 2;
  }
  f << text;
  return 0;
}

int usage() {
  std::fprintf(
      stderr,
      "usage: sealpk-snapshot save <workload> --at=<instret> [--out=<file>]\n"
      "       sealpk-snapshot restore <file> [--expect-exit=<code>]\n"
      "       sealpk-snapshot replay <workload> --at=<instret>\n"
      "       sealpk-snapshot diff <a> <b> [--json[=<path>]]\n"
      "       sealpk-snapshot info <file> [--json[=<path>]]\n"
      "options: [-q] [--ss=none|inline|func|sealpk-wr|sealpk-rdwr|mprotect]\n"
      "         [--seal] [--chaos-seed=<n>] [--chaos-rate=<p>]\n"
      "         [--cam-rate=<p>] [--max-faults=<n>]\n");
  return 2;
}

bool parse_ss_kind(const std::string& text, passes::ShadowStackKind* out) {
  if (text == "none") *out = passes::ShadowStackKind::kNone;
  else if (text == "inline") *out = passes::ShadowStackKind::kInline;
  else if (text == "func") *out = passes::ShadowStackKind::kFunc;
  else if (text == "sealpk-wr") *out = passes::ShadowStackKind::kSealPkWr;
  else if (text == "sealpk-rdwr") *out = passes::ShadowStackKind::kSealPkRdWr;
  else if (text == "mprotect") *out = passes::ShadowStackKind::kMprotect;
  else return false;
  return true;
}

const wl::Workload* find_workload(const std::string& name) {
  for (const auto& w : wl::all_workloads()) {
    if (name == w.name) return &w;
  }
  return nullptr;
}

isa::Image build_image(const wl::Workload& w, const CliOptions& cli) {
  isa::Program prog = w.build(w.test_scale);
  if (cli.ss != passes::ShadowStackKind::kNone) {
    passes::ShadowStackOptions ss;
    ss.kind = cli.ss;
    ss.perm_seal = cli.perm_seal;
    passes::apply_shadow_stack(prog, ss);
  }
  return prog.link();
}

sim::MachineConfig make_config(const CliOptions& cli) {
  sim::MachineConfig config;
  config.fault_plan = cli.plan;
  return config;
}

int cmd_save(const CliOptions& cli) {
  const wl::Workload* w = find_workload(cli.positional[0]);
  if (w == nullptr) {
    std::fprintf(stderr, "unknown workload '%s'\n", cli.positional[0].c_str());
    return 2;
  }
  sim::Machine machine(make_config(cli));
  const int pid = machine.load(build_image(*w, cli));
  if (pid == sim::Machine::kLoadRefused) {
    std::fprintf(stderr, "workload refused by loader\n");
    return 1;
  }
  machine.run(cli.at);
  const std::vector<u8> blob = snapshot::save(machine);
  const std::string out =
      cli.out.empty() ? cli.positional[0] + ".spksnap" : cli.out;
  snapshot::write_file(out, blob);
  if (!cli.quiet) {
    std::printf("%s: %zu bytes at instret=%llu pc=0x%llx\n", out.c_str(),
                blob.size(),
                static_cast<unsigned long long>(machine.hart().instret()),
                static_cast<unsigned long long>(machine.hart().pc()));
  }
  return 0;
}

int cmd_restore(const CliOptions& cli) {
  const std::vector<u8> blob = snapshot::read_file(cli.positional[0]);
  sim::Machine machine(snapshot::config_from(blob));
  snapshot::restore(machine, blob);
  const sim::RunOutcome outcome = machine.run();
  int pid = -1;
  for (int p = 1; p < 64; ++p) {
    if (machine.has_process(p)) pid = p;
  }
  const i64 code = pid > 0 ? machine.exit_code(pid) : sim::Machine::kNoExitCode;
  if (!cli.quiet) {
    std::printf("resumed %llu instruction(s), completed=%d, exit=%lld\n",
                static_cast<unsigned long long>(outcome.instructions),
                outcome.completed ? 1 : 0, static_cast<long long>(code));
    std::fputs(machine.kernel().console().c_str(), stdout);
  }
  if (cli.have_expect_exit && code != cli.expect_exit) {
    std::fprintf(stderr, "exit code %lld, expected %lld\n",
                 static_cast<long long>(code),
                 static_cast<long long>(cli.expect_exit));
    return 1;
  }
  return outcome.completed ? 0 : 1;
}

int cmd_replay(const CliOptions& cli) {
  const wl::Workload* w = find_workload(cli.positional[0]);
  if (w == nullptr) {
    std::fprintf(stderr, "unknown workload '%s'\n", cli.positional[0].c_str());
    return 2;
  }
  const isa::Image image = build_image(*w, cli);

  // Reference: one uninterrupted run.
  sim::Machine straight(make_config(cli));
  if (straight.load(image) == sim::Machine::kLoadRefused) {
    std::fprintf(stderr, "workload refused by loader\n");
    return 1;
  }
  straight.run();
  const std::vector<u8> final_straight = snapshot::save(straight);

  // Candidate: same run, but torn down and resumed from a snapshot midway.
  sim::Machine first(make_config(cli));
  first.load(image);
  first.run(cli.at);
  const std::vector<u8> mid = snapshot::save(first);

  sim::Machine resumed(snapshot::config_from(mid));
  snapshot::restore(resumed, mid);
  resumed.run();
  const std::vector<u8> final_resumed = snapshot::save(resumed);

  if (final_straight == final_resumed) {
    if (!cli.quiet) {
      std::printf(
          "%s: bit-identical after save/restore at instret=%llu "
          "(%zu-byte final state)\n",
          cli.positional[0].c_str(), static_cast<unsigned long long>(cli.at),
          final_straight.size());
    }
    return 0;
  }
  std::printf("%s: FINAL STATE DIVERGED after restore at instret=%llu\n",
              cli.positional[0].c_str(),
              static_cast<unsigned long long>(cli.at));
  for (const auto& line : snapshot::diff(final_straight, final_resumed)) {
    std::printf("  %s\n", line.c_str());
  }
  return 1;
}

int cmd_diff(const CliOptions& cli) {
  const std::vector<u8> a = snapshot::read_file(cli.positional[0]);
  const std::vector<u8> b = snapshot::read_file(cli.positional[1]);
  const std::vector<std::string> lines = snapshot::diff(a, b);
  if (cli.json) {
    std::ostringstream os;
    os << "{\"a\": \"" << json_escape(cli.positional[0]) << "\", \"b\": \""
       << json_escape(cli.positional[1])
       << "\", \"equivalent\": " << (lines.empty() ? "true" : "false")
       << ", \"differences\": [";
    for (size_t i = 0; i < lines.size(); ++i) {
      os << (i != 0 ? ", " : "") << "\"" << json_escape(lines[i]) << "\"";
    }
    os << "]}\n";
    const int rc = emit_json(cli, os.str());
    if (rc != 0) return rc;
    return lines.empty() ? 0 : 1;
  }
  if (lines.empty()) {
    if (!cli.quiet) std::printf("snapshots are equivalent\n");
    return 0;
  }
  for (const auto& line : lines) std::printf("%s\n", line.c_str());
  return 1;
}

int cmd_info(const CliOptions& cli) {
  const std::vector<u8> blob = snapshot::read_file(cli.positional[0]);
  const snapshot::Info info = snapshot::info(blob);
  if (cli.json) {
    char checksum[32];
    std::snprintf(checksum, sizeof(checksum), "%016llx",
                  static_cast<unsigned long long>(info.checksum));
    std::ostringstream os;
    os << "{\"file\": \"" << json_escape(cli.positional[0])
       << "\", \"version\": " << info.version
       << ", \"payload_bytes\": " << info.payload_len << ", \"fnv1a64\": \""
       << checksum << "\", \"checksum_ok\": "
       << (info.checksum_ok ? "true" : "false")
       << ", \"instret\": " << info.instret << ", \"cycles\": " << info.cycles
       << ", \"pc\": " << info.pc << ", \"sections\": [";
    for (size_t i = 0; i < info.sections.size(); ++i) {
      os << (i != 0 ? ", " : "") << "{\"name\": \""
         << json_escape(info.sections[i].name)
         << "\", \"bytes\": " << info.sections[i].size << "}";
    }
    os << "]}\n";
    return emit_json(cli, os.str());
  }
  std::printf("version   %u\n", info.version);
  std::printf("payload   %llu bytes, fnv1a64=%016llx (%s)\n",
              static_cast<unsigned long long>(info.payload_len),
              static_cast<unsigned long long>(info.checksum),
              info.checksum_ok ? "ok" : "MISMATCH");
  std::printf("instret   %llu\n",
              static_cast<unsigned long long>(info.instret));
  std::printf("cycles    %llu\n", static_cast<unsigned long long>(info.cycles));
  std::printf("pc        0x%llx\n", static_cast<unsigned long long>(info.pc));
  for (const auto& sec : info.sections) {
    std::printf("  %-4s  %llu bytes\n", sec.name.c_str(),
                static_cast<unsigned long long>(sec.size));
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions cli;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "-q" || arg == "--quiet") {
      cli.quiet = true;
    } else if (arg == "--seal") {
      cli.perm_seal = true;
    } else if (arg.rfind("--ss=", 0) == 0) {
      if (!parse_ss_kind(arg.substr(5), &cli.ss)) return usage();
    } else if (arg.rfind("--at=", 0) == 0) {
      cli.at = std::strtoull(arg.c_str() + 5, nullptr, 0);
      cli.have_at = true;
    } else if (arg.rfind("--out=", 0) == 0) {
      cli.out = arg.substr(6);
    } else if (arg == "--json") {
      cli.json = true;
    } else if (arg.rfind("--json=", 0) == 0) {
      cli.json = true;
      cli.json_out = arg.substr(7);
    } else if (arg.rfind("--expect-exit=", 0) == 0) {
      cli.expect_exit = std::strtoll(arg.c_str() + 14, nullptr, 0);
      cli.have_expect_exit = true;
    } else if (arg.rfind("--chaos-seed=", 0) == 0) {
      cli.plan.enabled = true;
      cli.plan.seed = std::strtoull(arg.c_str() + 13, nullptr, 0);
    } else if (arg.rfind("--chaos-rate=", 0) == 0) {
      cli.plan.enabled = true;
      cli.plan.rate = std::strtod(arg.c_str() + 13, nullptr);
    } else if (arg.rfind("--cam-rate=", 0) == 0) {
      cli.plan.enabled = true;
      cli.plan.cam_rate = std::strtod(arg.c_str() + 11, nullptr);
    } else if (arg.rfind("--max-faults=", 0) == 0) {
      cli.plan.max_faults = std::strtoull(arg.c_str() + 13, nullptr, 0);
    } else if (!arg.empty() && arg[0] == '-') {
      return usage();
    } else if (cli.command.empty()) {
      cli.command = arg;
    } else {
      cli.positional.push_back(arg);
    }
  }

  const size_t nargs = cli.positional.size();
  try {
    if (cli.command == "save" && nargs == 1 && cli.have_at) {
      return cmd_save(cli);
    }
    if (cli.command == "restore" && nargs == 1) return cmd_restore(cli);
    if (cli.command == "replay" && nargs == 1 && cli.have_at) {
      return cmd_replay(cli);
    }
    if (cli.command == "diff" && nargs == 2) return cmd_diff(cli);
    if (cli.command == "info" && nargs == 1) return cmd_info(cli);
  } catch (const snapshot::SnapshotError& e) {
    std::fprintf(stderr, "sealpk-snapshot: %s\n", e.what());
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "sealpk-snapshot: unexpected error: %s\n", e.what());
    return 2;
  }
  return usage();
}
