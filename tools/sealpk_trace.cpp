// sealpk-trace — record and inspect deterministic execution traces.
//
// Subcommands:
//   record <workload> [--out=<file>] [--sample=<n>] [--ring=<n>]
//       Build the workload, run it with the event recorder enabled and write
//       the serialized trace blob (default <workload>.spktrace). --sample=N
//       turns on the PC profiler (one sample every N retired instructions);
//       --ring=N bounds capture to the most recent N events (0 = keep all).
//   report <file>
//       Aggregate view: event counts, per-pkey attribution table, domain
//       residency histograms and the hottest functions by sample count.
//   export <file> [--json=<file>] [--collapsed=<file>] [--timeline]
//       Convert a trace blob: --json writes Chrome/Perfetto trace_event JSON
//       (load in ui.perfetto.dev), --collapsed writes folded stacks for
//       flamegraph.pl, --timeline prints the per-event text timeline.
//   diff <a> <b> [--json=<file>]
//       Structural comparison of two blobs (exit status 1 when they differ).
//       This is the CI determinism oracle: two records of the same workload
//       must produce byte-identical blobs. --json writes a machine-readable
//       verdict without changing the exit code.
//
// Workload construction accepts the same shaping flags as sealpk-snapshot
// (--ss=, --seal), so sealed shadow-stack variants can be profiled too.
// Timestamps in every output are modelled instruction/cycle counts — never
// host wall-clock — which is what makes traces diffable at all.
//
// Exit status: 0 success, 1 diff/check failure, 2 usage or I/O errors.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/json.h"
#include "obs/export.h"
#include "obs/recorder.h"
#include "passes/shadow_stack.h"
#include "sim/machine.h"
#include "workloads/workload.h"

using namespace sealpk;

namespace {

struct CliOptions {
  std::string command;
  std::vector<std::string> positional;
  std::string out;
  bool json = false;  // --json[=path] (report mode: machine-readable)
  std::string json_out;
  std::string collapsed_out;
  bool timeline = false;
  u64 sample = 0;  // 0 = profiler off
  u64 ring = 0;    // 0 = unbounded capture
  bool quiet = false;
  bool perm_seal = false;
  passes::ShadowStackKind ss = passes::ShadowStackKind::kNone;
};

int usage() {
  std::fprintf(
      stderr,
      "usage: sealpk-trace record <workload> [--out=<file>] [--sample=<n>]\n"
      "                           [--ring=<n>]\n"
      "       sealpk-trace report <file> [--json[=<file>]]\n"
      "       sealpk-trace export <file> [--json=<file>] [--collapsed=<file>]\n"
      "                           [--timeline]\n"
      "       sealpk-trace diff <a> <b> [--json=<file>]\n"
      "options: [-q] [--ss=none|inline|func|sealpk-wr|sealpk-rdwr|mprotect]\n"
      "         [--seal]\n");
  return 2;
}

bool parse_ss_kind(const std::string& text, passes::ShadowStackKind* out) {
  if (text == "none") *out = passes::ShadowStackKind::kNone;
  else if (text == "inline") *out = passes::ShadowStackKind::kInline;
  else if (text == "func") *out = passes::ShadowStackKind::kFunc;
  else if (text == "sealpk-wr") *out = passes::ShadowStackKind::kSealPkWr;
  else if (text == "sealpk-rdwr") *out = passes::ShadowStackKind::kSealPkRdWr;
  else if (text == "mprotect") *out = passes::ShadowStackKind::kMprotect;
  else return false;
  return true;
}

const wl::Workload* find_workload(const std::string& name) {
  for (const auto& w : wl::all_workloads()) {
    if (name == w.name) return &w;
  }
  return nullptr;
}

void write_file(const std::string& path, const std::vector<u8>& bytes) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) throw std::runtime_error("cannot open '" + path + "' for writing");
  f.write(reinterpret_cast<const char*>(bytes.data()),
          static_cast<std::streamsize>(bytes.size()));
  if (!f) throw std::runtime_error("short write to '" + path + "'");
}

std::vector<u8> read_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("cannot open '" + path + "'");
  return std::vector<u8>(std::istreambuf_iterator<char>(f),
                         std::istreambuf_iterator<char>());
}

obs::Trace load_trace(const std::string& path) {
  return obs::parse(read_file(path));
}

int cmd_record(const CliOptions& cli) {
  const wl::Workload* w = find_workload(cli.positional[0]);
  if (w == nullptr) {
    std::fprintf(stderr, "unknown workload '%s'\n", cli.positional[0].c_str());
    return 2;
  }
  isa::Program prog = w->build(w->test_scale);
  if (cli.ss != passes::ShadowStackKind::kNone) {
    passes::ShadowStackOptions ss;
    ss.kind = cli.ss;
    ss.perm_seal = cli.perm_seal;
    passes::apply_shadow_stack(prog, ss);
  }

  sim::MachineConfig config;
  config.trace.enabled = true;
  config.trace.ring_capacity = cli.ring;
  config.trace.sample_interval = cli.sample;
  sim::Machine machine(config);
  if (machine.load(prog.link()) == sim::Machine::kLoadRefused) {
    std::fprintf(stderr, "workload refused by loader\n");
    return 1;
  }
  const sim::RunOutcome outcome = machine.run();
  if (!outcome.completed) {
    std::fprintf(stderr, "run did not complete\n");
    return 1;
  }

  const std::vector<u8> blob = machine.recorder()->serialize_blob();
  const std::string out =
      cli.out.empty() ? cli.positional[0] + ".spktrace" : cli.out;
  write_file(out, blob);
  if (!cli.quiet) {
    const obs::TraceSummary s =
        machine.recorder()->summary(machine.hart().cycles());
    std::printf(
        "%s: %zu bytes, %llu event(s) (%llu dropped), %llu sample(s), "
        "%llu instructions\n",
        out.c_str(), blob.size(), static_cast<unsigned long long>(s.events),
        static_cast<unsigned long long>(s.dropped),
        static_cast<unsigned long long>(s.samples),
        static_cast<unsigned long long>(outcome.instructions));
  }
  return 0;
}

int cmd_report(const CliOptions& cli) {
  const obs::Trace trace = load_trace(cli.positional[0]);
  // --json[=path] swaps the rendering for the machine-readable report
  // ("sealpk-trace-report-v1": counters + per-pkey table + span
  // quantiles); exit-code parity with plain mode (both 0 on a loadable
  // blob — damage is caught by load_trace either way).
  if (cli.json) {
    if (cli.json_out.empty()) {
      obs::write_report_json(trace, std::cout);
      return 0;
    }
    std::ofstream f(cli.json_out, std::ios::trunc);
    if (!f) {
      std::fprintf(stderr, "cannot open '%s'\n", cli.json_out.c_str());
      return 2;
    }
    obs::write_report_json(trace, f);
    if (!cli.quiet) std::printf("%s: report json\n", cli.json_out.c_str());
    return 0;
  }
  obs::write_report(trace, std::cout);
  return 0;
}

int cmd_export(const CliOptions& cli) {
  if (cli.json_out.empty() && cli.collapsed_out.empty() && !cli.timeline) {
    return usage();
  }
  const obs::Trace trace = load_trace(cli.positional[0]);
  if (!cli.json_out.empty()) {
    std::ofstream f(cli.json_out, std::ios::trunc);
    if (!f) {
      std::fprintf(stderr, "cannot open '%s'\n", cli.json_out.c_str());
      return 2;
    }
    obs::write_perfetto_json(trace, f);
    if (!cli.quiet) std::printf("%s: perfetto json\n", cli.json_out.c_str());
  }
  if (!cli.collapsed_out.empty()) {
    std::ofstream f(cli.collapsed_out, std::ios::trunc);
    if (!f) {
      std::fprintf(stderr, "cannot open '%s'\n", cli.collapsed_out.c_str());
      return 2;
    }
    obs::write_collapsed(trace, f);
    if (!cli.quiet) {
      std::printf("%s: collapsed stacks\n", cli.collapsed_out.c_str());
    }
  }
  if (cli.timeline) obs::write_timeline(trace, std::cout);
  return 0;
}

int cmd_diff(const CliOptions& cli) {
  const std::string delta =
      obs::diff_traces(load_trace(cli.positional[0]),
                       load_trace(cli.positional[1]));
  // --json changes the output format, never the verdict: structural
  // divergence exits nonzero in JSON mode exactly as in plain mode (the
  // same contract sealpk-fleet diff --json pins).
  if (!cli.json_out.empty()) {
    std::ofstream f(cli.json_out, std::ios::trunc);
    if (!f) {
      std::fprintf(stderr, "cannot open '%s'\n", cli.json_out.c_str());
      return 2;
    }
    f << "{\"a\": \"" << json_escape(cli.positional[0]) << "\", \"b\": \""
      << json_escape(cli.positional[1])
      << "\", \"identical\": " << (delta.empty() ? "true" : "false")
      << ", \"delta\": \"" << json_escape(delta) << "\"}\n";
    return delta.empty() ? 0 : 1;
  }
  if (delta.empty()) {
    if (!cli.quiet) std::printf("traces are identical\n");
    return 0;
  }
  std::printf("%s\n", delta.c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions cli;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "-q" || arg == "--quiet") {
      cli.quiet = true;
    } else if (arg == "--seal") {
      cli.perm_seal = true;
    } else if (arg == "--timeline") {
      cli.timeline = true;
    } else if (arg.rfind("--ss=", 0) == 0) {
      if (!parse_ss_kind(arg.substr(5), &cli.ss)) return usage();
    } else if (arg.rfind("--out=", 0) == 0) {
      cli.out = arg.substr(6);
    } else if (arg == "--json") {
      cli.json = true;
    } else if (arg.rfind("--json=", 0) == 0) {
      cli.json = true;
      cli.json_out = arg.substr(7);
    } else if (arg.rfind("--collapsed=", 0) == 0) {
      cli.collapsed_out = arg.substr(12);
    } else if (arg.rfind("--sample=", 0) == 0) {
      cli.sample = std::strtoull(arg.c_str() + 9, nullptr, 0);
    } else if (arg.rfind("--ring=", 0) == 0) {
      cli.ring = std::strtoull(arg.c_str() + 7, nullptr, 0);
    } else if (!arg.empty() && arg[0] == '-') {
      return usage();
    } else if (cli.command.empty()) {
      cli.command = arg;
    } else {
      cli.positional.push_back(arg);
    }
  }

  const size_t nargs = cli.positional.size();
  try {
    if (cli.command == "record" && nargs == 1) return cmd_record(cli);
    if (cli.command == "report" && nargs == 1) return cmd_report(cli);
    if (cli.command == "export" && nargs == 1) return cmd_export(cli);
    if (cli.command == "diff" && nargs == 2) return cmd_diff(cli);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "sealpk-trace: %s\n", e.what());
    return 2;
  }
  return usage();
}
