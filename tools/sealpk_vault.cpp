// sealpk-vault — crash-anywhere sealed-storage durability workbench
// (src/vault).
//
// An owner domain seals secret bundles into a write-only, perm-sealed
// vault region through the kernel's vault syscalls, journaling every
// operation (guest-written intent record, kernel-written commit record,
// FNV-1a checksums throughout). This tool drives the workload and its
// durability harness:
//
//   run     one clean run; prints the recovered ledger and vault counters,
//           exits 0 iff the run is clean and the ledger matches the
//           build-time oracle
//   sweep   the crash-anywhere sweep: kill a fresh machine at every
//           sampled instret (dense around every journal-record write,
//           uniform elsewhere), cold-replay the region and assert
//           integrity / durability / confidentiality; a subset of points
//           additionally restores the last known-good checkpoint and
//           re-runs to completion. --chaos layers seeded vault-record bit
//           flips on top (invariants weaken exactly to detection).
//
// --selfcheck re-runs the sweep serially and requires the canonical
// verdict to be byte-identical to the parallel run. --json writes the
// machine-readable verdict (the CI artifact uploaded on failure).
//
// Exit status: 0 ok, 1 invariant violated, 2 usage or I/O error.
//
// Usage:
//   sealpk-vault run --seals=5 --reseals=2 --unseals=3
//   sealpk-vault sweep --threads=4 --selfcheck --json=vault_sweep.json
//   sealpk-vault sweep --chaos --chaos-seed=7 --threads=4
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "sim/machine.h"
#include "vault/run.h"
#include "vault/sweep.h"

using namespace sealpk;

namespace {

struct CliOptions {
  std::string mode;
  bool quiet = false;
  bool selfcheck = false;
  std::string json_path;
  vault::SweepConfig cfg;
};

int usage() {
  std::fprintf(
      stderr,
      "usage: sealpk-vault run [options]\n"
      "       sealpk-vault sweep [options]\n"
      "options:\n"
      "  --slots=<n> --slot-size=<bytes> --seals=<n> --reseals=<n>\n"
      "  --unseals=<n> --seed=<n>\n"
      "  --points=<n>             minimum sampled crash points (sweep)\n"
      "  --stride=<n>             uniform samples across the run (sweep)\n"
      "  --threads=<n>            fleet workers for the sweep\n"
      "  --rollback-every=<n>     checkpoint-resume every Nth point\n"
      "  --checkpoint-interval=<instructions>\n"
      "  --chaos --chaos-runs=<n> --chaos-seed=<n> --chaos-rate=<p>\n"
      "  --chaos-max-faults=<n>\n"
      "  --selfcheck              serial re-run must match byte-for-byte\n"
      "  --json=<path>            machine-readable sweep verdict\n"
      "  -q                       suppress the canonical report\n");
  return 2;
}

bool write_text_file(const std::string& path, const std::string& text) {
  std::ofstream out(path);
  if (!out) return false;
  out << text;
  return out.good();
}

int mode_run(const CliOptions& cli) {
  const vault::VaultRunResult r = vault::run_vault_once(cli.cfg.spec);
  if (r.ledger.empty()) {  // run_vault_once bailed before running
    std::fprintf(stderr, "load refused\n");
    return 1;
  }
  const os::VaultStats& vs = r.stats;
  if (!cli.quiet) {
    std::printf("%s", r.ledger.c_str());
    std::printf(
        "vault run exit=%lld instructions=%llu seals=%llu reseals=%llu "
        "unseals=%llu denials=%llu corruption_detected=%llu\n",
        static_cast<long long>(r.exit_code),
        static_cast<unsigned long long>(r.instructions),
        static_cast<unsigned long long>(vs.seals),
        static_cast<unsigned long long>(vs.reseals),
        static_cast<unsigned long long>(vs.unseals),
        static_cast<unsigned long long>(vs.denials),
        static_cast<unsigned long long>(vs.corruption_detected));
  }
  return r.ok() ? 0 : 1;
}

int mode_sweep(const CliOptions& cli) {
  const vault::SweepResult r = vault::run_sweep(cli.cfg);
  if (!cli.quiet) std::printf("%s", r.canonical.c_str());
  int rc = r.ok ? 0 : 1;
  if (cli.selfcheck) {
    vault::SweepConfig serial = cli.cfg;
    serial.threads = 1;
    const vault::SweepResult again = vault::run_sweep(serial);
    if (again.canonical != r.canonical) {
      std::fprintf(stderr,
                   "selfcheck: serial sweep diverged from %u-thread sweep\n",
                   cli.cfg.threads);
      rc = 1;
    } else if (!cli.quiet) {
      std::printf("selfcheck: serial re-run byte-identical\n");
    }
  }
  if (!cli.json_path.empty()) {
    std::ostringstream os;
    vault::write_sweep_json(os, cli.cfg, r);
    if (!write_text_file(cli.json_path, os.str())) {
      std::fprintf(stderr, "cannot write %s\n", cli.json_path.c_str());
      return 2;
    }
  }
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions cli;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "run" || arg == "sweep") {
      if (!cli.mode.empty()) return usage();
      cli.mode = arg;
    } else if (arg == "-q" || arg == "--quiet") {
      cli.quiet = true;
    } else if (arg == "--selfcheck") {
      cli.selfcheck = true;
    } else if (arg == "--chaos") {
      cli.cfg.chaos = true;
    } else if (arg.rfind("--slots=", 0) == 0) {
      cli.cfg.spec.n_slots = std::strtoull(arg.c_str() + 8, nullptr, 0);
    } else if (arg.rfind("--slot-size=", 0) == 0) {
      cli.cfg.spec.slot_size = std::strtoull(arg.c_str() + 12, nullptr, 0);
    } else if (arg.rfind("--seals=", 0) == 0) {
      cli.cfg.spec.seals =
          static_cast<u32>(std::strtoul(arg.c_str() + 8, nullptr, 0));
    } else if (arg.rfind("--reseals=", 0) == 0) {
      cli.cfg.spec.reseals =
          static_cast<u32>(std::strtoul(arg.c_str() + 10, nullptr, 0));
    } else if (arg.rfind("--unseals=", 0) == 0) {
      cli.cfg.spec.unseals =
          static_cast<u32>(std::strtoul(arg.c_str() + 10, nullptr, 0));
    } else if (arg.rfind("--seed=", 0) == 0) {
      cli.cfg.spec.seed = std::strtoull(arg.c_str() + 7, nullptr, 0);
    } else if (arg.rfind("--points=", 0) == 0) {
      cli.cfg.min_points = std::strtoull(arg.c_str() + 9, nullptr, 0);
    } else if (arg.rfind("--stride=", 0) == 0) {
      cli.cfg.stride_points = std::strtoull(arg.c_str() + 9, nullptr, 0);
    } else if (arg.rfind("--threads=", 0) == 0) {
      cli.cfg.threads =
          static_cast<unsigned>(std::strtoul(arg.c_str() + 10, nullptr, 0));
    } else if (arg.rfind("--rollback-every=", 0) == 0) {
      cli.cfg.rollback_every = std::strtoull(arg.c_str() + 17, nullptr, 0);
    } else if (arg.rfind("--checkpoint-interval=", 0) == 0) {
      cli.cfg.checkpoint_interval =
          std::strtoull(arg.c_str() + 22, nullptr, 0);
    } else if (arg.rfind("--chaos-runs=", 0) == 0) {
      cli.cfg.chaos_runs = std::strtoull(arg.c_str() + 13, nullptr, 0);
    } else if (arg.rfind("--chaos-seed=", 0) == 0) {
      cli.cfg.chaos_seed = std::strtoull(arg.c_str() + 13, nullptr, 0);
    } else if (arg.rfind("--chaos-rate=", 0) == 0) {
      cli.cfg.chaos_rate = std::strtod(arg.c_str() + 13, nullptr);
    } else if (arg.rfind("--chaos-max-faults=", 0) == 0) {
      cli.cfg.chaos_max_faults = std::strtoull(arg.c_str() + 19, nullptr, 0);
    } else if (arg.rfind("--json=", 0) == 0) {
      cli.json_path = arg.substr(7);
    } else {
      return usage();
    }
  }
  if (cli.mode == "run") return mode_run(cli);
  if (cli.mode == "sweep") return mode_sweep(cli);
  return usage();
}
