// Quickstart: the smallest end-to-end SealPK program.
//
// Builds a guest program with the assembler API, runs it on a simulated
// Rocket+SealPK machine, and shows the core mechanic: a page assigned to a
// read-only protection domain can be read but not written, the fault
// report carries the denying pkey, and a user-space WRPKR (via the
// __pkey_set helper) flips the permission without any syscall.
#include <cstdio>

#include "analysis/verifier.h"
#include "runtime/guest.h"
#include "sim/machine.h"

using namespace sealpk;
using namespace sealpk::isa;

int main() {
  Program prog;
  rt::add_crt0(prog);
  rt::add_pkey_lib(prog);  // __pkey_set / __pkey_get (RDPKR/WRPKR wrappers)

  Function& f = prog.add_function("main");
  f.addi(sp, sp, -16);
  f.sd(ra, 0, sp);

  // secret = mmap(1 page, RW)
  f.li(a0, 0);
  f.li(a1, 4096);
  f.li(a2, static_cast<i64>(os::prot::kRead | os::prot::kWrite));
  rt::syscall(f, os::sys::kMmap);
  f.mv(s0, a0);
  f.li(t0, 0x5EC12E7);  // "SECRET"
  f.sd(t0, 0, s0);      // initialise while still writable

  // pkey = pkey_alloc(0, read-only)
  f.li(a0, 0);
  f.li(a1, static_cast<i64>(os::pkeyperm::kReadOnly));
  rt::syscall(f, os::sys::kPkeyAlloc);
  f.mv(s1, a0);

  // pkey_mprotect(secret, 4096, RW, pkey) — the PTE stays RW; the *domain*
  // is read-only, so the effective permission is read-only.
  f.mv(a0, s0);
  f.li(a1, 4096);
  f.li(a2, static_cast<i64>(os::prot::kRead | os::prot::kWrite));
  f.mv(a3, s1);
  rt::syscall(f, os::sys::kPkeyMprotect);

  // Reading works...
  f.ld(a0, 0, s0);
  rt::syscall(f, os::sys::kReport);  // report the secret we can read

  // ...and a single user-space permission flip (RDPKR+WRPKR, no syscall,
  // no TLB flush) makes it writable again:
  f.mv(a0, s1);
  f.li(a1, static_cast<i64>(os::pkeyperm::kRw));
  f.call("__pkey_set");
  f.li(t0, 0x600D);
  f.sd(t0, 0, s0);
  f.ld(a0, 0, s0);
  rt::syscall(f, os::sys::kReport);  // report the new value

  // Flip back to read-only and prove the next store faults (the kernel
  // will kill us with a pkey-augmented SIGSEGV — that *is* the success
  // condition of this demo).
  f.mv(a0, s1);
  f.li(a1, static_cast<i64>(os::pkeyperm::kReadOnly));
  f.call("__pkey_set");
  f.sd(t0, 0, s0);  // <- faults here

  f.ld(ra, 0, sp);
  f.addi(sp, sp, 16);
  f.li(a0, 0);
  f.ret();

  // Load under the strict admission policy: the static verifier inspects
  // the linked binary first (every WRPKR here lives inside the trusted
  // __pkey_set gate, so the image is admitted — see `sealpk-verify`).
  sim::MachineConfig config;
  config.verify_policy = analysis::LoadVerifyPolicy::kEnforce;
  sim::Machine machine{config};
  if (machine.load(prog.link()) == sim::Machine::kLoadRefused) {
    std::printf("static verifier refused the image!?\n");
    return 1;
  }
  const auto outcome = machine.run();

  std::printf("SealPK quickstart (simulated Rocket + SealPK, %llu cycles)\n\n",
              static_cast<unsigned long long>(outcome.cycles));
  const auto& reports = machine.kernel().reports();
  std::printf("read from read-only domain:    0x%llX\n",
              static_cast<unsigned long long>(reports.at(0)));
  std::printf("write after user-space unlock: 0x%llX\n",
              static_cast<unsigned long long>(reports.at(1)));
  const auto& faults = machine.kernel().faults();
  if (faults.size() == 1 && faults[0].pkey_fault) {
    std::printf(
        "write after re-lock:           store page fault, pkey=%u "
        "(augmented fault info, paper §III-B.2)\n",
        faults[0].pkey);
    std::printf("\nAll three behaviours as expected.\n");
    return 0;
  }
  std::printf("unexpected fault behaviour!\n");
  return 1;
}
