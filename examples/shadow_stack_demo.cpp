// The paper's §V-B case study as a demo: an isolated shadow stack defeats
// a return-oriented-programming attack, and the SealPK version costs a
// fraction of the mprotect version.
//
// The guest program has a vulnerable function that overwrites its saved
// return address with a gadget's address (the classic stack smash). We run
// it four ways: uninstrumented (the attack lands), with an unprotected
// shadow stack (caught), with the SealPK-RD+WR isolated shadow stack
// (caught, and the shadow stack itself is tamper-proof), and we measure
// the overhead of SealPK vs. mprotect isolation on a recursive workload.
#include <cstdio>

#include "passes/shadow_stack.h"
#include "runtime/guest.h"
#include "sim/machine.h"

using namespace sealpk;
using namespace sealpk::isa;

namespace {

Program make_vulnerable_program() {
  Program prog;
  rt::add_crt0(prog);
  Function& f = prog.add_function("main");
  f.addi(sp, sp, -16);
  f.sd(ra, 0, sp);
  f.call("handle_request");
  f.ld(ra, 0, sp);
  f.addi(sp, sp, 16);
  f.li(a0, 0);  // normal exit
  f.ret();

  // A request handler with a "buffer overflow": the attacker-controlled
  // write clobbers the saved return address on the stack.
  Function& v = prog.add_function("handle_request");
  v.addi(sp, sp, -32);
  v.sd(ra, 24, sp);
  v.la(t0, "gadget");  // attacker payload: &gadget
  v.sd(t0, 24, sp);    // the overflowing write
  v.ld(ra, 24, sp);
  v.addi(sp, sp, 32);
  v.ret();

  Function& g = prog.add_function("gadget");
  g.instrumentable = false;
  g.li(a0, 666);  // "attacker owns the process"
  rt::emit_exit(g);
  return prog;
}

i64 run_attack(passes::ShadowStackKind kind) {
  Program prog = make_vulnerable_program();
  passes::ShadowStackOptions opts;
  opts.kind = kind;
  passes::apply_shadow_stack(prog, opts);
  sim::Machine machine{sim::MachineConfig{}};
  const int pid = machine.load(prog.link());
  machine.run();
  return machine.exit_code(pid);
}

// Recursive workload for the overhead comparison.
Program make_fib(i64 n) {
  Program prog;
  rt::add_crt0(prog);
  Function& m = prog.add_function("main");
  m.addi(sp, sp, -16);
  m.sd(ra, 0, sp);
  m.li(a0, n);
  m.call("fib");
  m.ld(ra, 0, sp);
  m.addi(sp, sp, 16);
  m.li(a0, 0);
  m.ret();
  Function& f = prog.add_function("fib");
  const Label base = f.new_label();
  f.li(t0, 2);
  f.blt(a0, t0, base);
  f.addi(sp, sp, -32);
  f.sd(ra, 0, sp);
  f.sd(s0, 8, sp);
  f.sd(s1, 16, sp);
  f.mv(s0, a0);
  f.addi(a0, s0, -1);
  f.call("fib");
  f.mv(s1, a0);
  f.addi(a0, s0, -2);
  f.call("fib");
  f.add(a0, a0, s1);
  f.ld(ra, 0, sp);
  f.ld(s0, 8, sp);
  f.ld(s1, 16, sp);
  f.addi(sp, sp, 32);
  f.bind(base);
  f.ret();
  return prog;
}

u64 fib_cycles(passes::ShadowStackKind kind) {
  Program prog = make_fib(18);
  passes::ShadowStackOptions opts;
  opts.kind = kind;
  passes::apply_shadow_stack(prog, opts);
  sim::Machine machine{sim::MachineConfig{}};
  machine.load(prog.link());
  return machine.run().cycles;
}

}  // namespace

int main() {
  std::printf("Isolated shadow stack vs. a ROP attack (paper §V-B)\n\n");
  const i64 bare = run_attack(passes::ShadowStackKind::kNone);
  const i64 func = run_attack(passes::ShadowStackKind::kFunc);
  const i64 sealpk = run_attack(passes::ShadowStackKind::kSealPkRdWr);
  auto verdict = [](i64 code) {
    return code == 666  ? "ATTACK SUCCEEDED (gadget ran)"
           : code == 139 ? "attack caught (shadow-stack mismatch abort)"
                         : "unexpected";
  };
  std::printf("  no shadow stack:              %s\n", verdict(bare));
  std::printf("  unprotected shadow stack:     %s\n", verdict(func));
  std::printf("  SealPK isolated shadow stack: %s\n\n", verdict(sealpk));

  const u64 base = fib_cycles(passes::ShadowStackKind::kNone);
  const u64 rdwr = fib_cycles(passes::ShadowStackKind::kSealPkRdWr);
  const u64 mprot = fib_cycles(passes::ShadowStackKind::kMprotect);
  std::printf("Overhead on fib(18) (a pathological all-calls "
              "microbenchmark;\nrealistic workloads sit at 2-100%% — see "
              "bench_fig5_shadowstack):\n");
  std::printf("  SealPK-RD+WR : %6.2f%%\n",
              100.0 * (static_cast<double>(rdwr) - base) / base);
  std::printf("  mprotect     : %6.2f%%  (%.0fx more expensive)\n",
              100.0 * (static_cast<double>(mprot) - base) / base,
              static_cast<double>(mprot - base) /
                  static_cast<double>(rdwr - base));
  return (bare == 666 && func == 139 && sealpk == 139) ? 0 : 1;
}
