// The paper's Figure 3 end-to-end: a financial-record log protected by a
// SealPK domain, attacked by three malicious/buggy third-party components,
// each defeated by one of the three sealing features.
//
//   Func-A (trusted)  — flips the log domain write-only, appends a record,
//                       flips it back read-only. Its RDPKR/WRPKR toggles
//                       sit between seal.start/seal.end, so its body is
//                       the permissible WRPKR region.
//   Func-B (malicious)— re-keys the log into a fresh RW domain and
//                       falsifies it   -> stopped by DOMAIN sealing.
//   Func-C (malicious)— brute-force re-keys its prices pages hoping to
//                       join the log's domain, so the trusted reader
//                       crashes (DoS)  -> stopped by PAGE sealing.
//   Func-D (buggy)    — a buffer overflow injects `wrpkr pkey, x0`
//                       granting write access
//                                      -> stopped by PERMISSION sealing.
//
// Each attack runs twice on a fresh machine: unsealed (the attack lands,
// demonstrating that plain MPK-style keys are not enough) and sealed.
#include <cstdio>
#include <iostream>
#include <string>

#include "analysis/verifier.h"
#include "runtime/guest.h"
#include "sim/machine.h"

using namespace sealpk;
using namespace sealpk::isa;

namespace {

enum class Attack { kFuncB, kFuncC, kFuncD };

constexpr i64 kLogMagic = 0x10C0FFEE;
constexpr i64 kExitFalsified = 77;

// Inline read-modify-write of s1's 2-bit PKR field (Func-A cannot call the
// shared __pkey_set helper: the WRPKR must sit inside its own sealed code
// range).
void emit_pkey_set_inline(Function& f, i64 perm) {
  f.rdpkr(t0, s1);
  f.andi(t1, s1, 31);
  f.slli(t1, t1, 1);
  f.li(t2, 3);
  f.sll(t2, t2, t1);
  f.not_(t2, t2);
  f.and_(t0, t0, t2);
  f.li(t3, perm);
  f.sll(t3, t3, t1);
  f.or_(t0, t0, t3);
  f.wrpkr(s1, t0);
}

Program build_scenario(Attack attack, bool sealed) {
  Program prog;
  rt::add_crt0(prog);

  // --- Main (Fig. 3): allocate the log, key it read-only, maybe seal ----
  Function& f = prog.add_function("main");
  f.addi(sp, sp, -16);
  f.sd(ra, 0, sp);
  f.li(a0, 0);
  f.li(a1, 4096);
  f.li(a2, 3);
  rt::syscall(f, os::sys::kMmap);
  f.mv(s0, a0);  // s0 = log
  f.li(a0, 0);
  f.li(a1, 4096);
  f.li(a2, 3);
  rt::syscall(f, os::sys::kMmap);
  f.mv(s2, a0);  // s2 = prices (no sensitive data: stays in domain 0)
  f.li(a0, 0);
  f.li(a1, static_cast<i64>(os::pkeyperm::kReadOnly));
  rt::syscall(f, os::sys::kPkeyAlloc);
  f.mv(s1, a0);  // s1 = the log's pkey
  f.mv(a0, s0);
  f.li(a1, 4096);
  f.li(a2, 3);
  f.mv(a3, s1);
  rt::syscall(f, os::sys::kPkeyMprotect);
  if (sealed && attack != Attack::kFuncD) {
    f.mv(a0, s1);
    f.li(a1, 1);  // seal_domain
    f.li(a2, 1);  // seal_page
    rt::syscall(f, os::sys::kPkeySeal);
  }
  // Func-C strikes before the trusted update so the DoS (if unsealed)
  // fires when Func-A later touches the prices.
  if (attack == Attack::kFuncC) f.call("func_c");
  f.call("func_a");
  if (sealed && attack == Attack::kFuncD) {
    // Func-A's first run latched its seal.start/seal.end range; commit the
    // one-time fuse.
    f.mv(a0, s1);
    rt::syscall(f, os::sys::kPkeyPermSeal);
  }
  if (attack == Attack::kFuncB) f.call("func_b");
  if (attack == Attack::kFuncD) f.call("func_d");
  // Audit: the trusted record must still be in the log.
  f.ld(t0, 0, s0);
  f.li(t1, kLogMagic);
  f.li(a0, kExitFalsified);
  const Label out = f.new_label();
  f.bne(t0, t1, out);
  f.li(a0, 0);
  f.bind(out);
  f.ld(ra, 0, sp);
  f.addi(sp, sp, 16);
  f.ret();

  // --- Func-A: the trusted updater -------------------------------------
  {
    Function& a = prog.add_function("func_a");
    a.seal_start(0);
    emit_pkey_set_inline(a, static_cast<i64>(os::pkeyperm::kWriteOnly));
    a.li(t4, kLogMagic);
    a.sd(t4, 0, s0);   // append the record (domain is write-only)
    a.ld(t5, 0, s2);   // process the prices — the Func-C DoS lands here
    emit_pkey_set_inline(a, static_cast<i64>(os::pkeyperm::kReadOnly));
    a.seal_end(0);
    a.ret();
  }
  // --- Func-B: re-key the log into a fresh RW domain -------------------
  {
    Function& b = prog.add_function("func_b");
    const Label blocked = b.new_label();
    b.li(a0, 0);
    b.li(a1, 0);  // fully permissive domain
    rt::syscall(b, os::sys::kPkeyAlloc);
    b.mv(a3, a0);
    b.mv(a0, s0);
    b.li(a1, 4096);
    b.li(a2, 3);
    rt::syscall(b, os::sys::kPkeyMprotect);
    b.blt(a0, zero, blocked);  // EPERM when the domain is sealed
    b.li(t0, 0xBAD);
    b.sd(t0, 0, s0);  // falsify the record through the attacker's domain
    b.bind(blocked);
    b.ret();
  }
  // --- Func-C: brute-force its prices pages into other domains ---------
  {
    Function& c = prog.add_function("func_c");
    const Label loop = c.new_label(), done = c.new_label();
    c.li(s3, 1);  // candidate pkey
    c.bind(loop);
    c.li(t0, 5);
    c.bge(s3, t0, done);
    c.mv(a0, s2);
    c.li(a1, 4096);
    c.li(a2, 3);
    c.mv(a3, s3);
    rt::syscall(c, os::sys::kPkeyMprotect);  // result ignored: brute force
    c.addi(s3, s3, 1);
    c.j(loop);
    c.bind(done);
    c.ret();
  }
  // --- Func-D: the buffer-overflow-injected WRPKR gadget ---------------
  {
    Function& d = prog.add_function("func_d");
    d.wrpkr(s1, zero);  // grant everything in the log's PKR row
    d.li(t0, 0xBAD);
    d.sd(t0, 0, s0);    // falsify
    d.ret();
  }
  return prog;
}

struct Outcome {
  i64 exit_code = 0;
  bool faulted = false;
  core::TrapCause cause = core::TrapCause::kIllegalInst;
  bool pkey_fault = false;
};

Outcome run_scenario(Attack attack, bool sealed) {
  sim::Machine machine{sim::MachineConfig{}};
  const int pid = machine.load(build_scenario(attack, sealed).link());
  machine.run();
  Outcome out;
  out.exit_code = machine.exit_code(pid);
  const auto& faults = machine.kernel().faults();
  if (!faults.empty()) {
    out.faulted = true;
    out.cause = faults[0].cause;
    out.pkey_fault = faults[0].pkey_fault;
  }
  return out;
}

const char* describe(const Outcome& out) {
  if (out.faulted) {
    static std::string text;
    text = std::string("killed: ") + core::trap_cause_name(out.cause) +
           (out.pkey_fault ? " (pkey fault)" : "");
    return text.c_str();
  }
  if (out.exit_code == kExitFalsified) return "LOG FALSIFIED";
  if (out.exit_code == 0) return "log intact, clean exit";
  return "unexpected exit";
}

}  // namespace

int main() {
  std::printf("Figure 3 scenario: tamper-proof financial log\n\n");
  struct Case {
    Attack attack;
    const char* name;
    const char* seal_name;
    // expectations
    bool unsealed_falsified_or_dos;
    bool sealed_clean;
  };
  const Case cases[] = {
      {Attack::kFuncB, "Func-B re-keys the log", "domain seal", true, true},
      {Attack::kFuncC, "Func-C squats the domain (DoS)", "page seal", true,
       true},
      {Attack::kFuncD, "Func-D injects WRPKR", "permission seal", true,
       false /* sealed run ends in a SealViolation kill of Func-D */},
  };
  bool all_ok = true;
  for (const auto& c : cases) {
    const Outcome unsealed = run_scenario(c.attack, false);
    const Outcome sealed = run_scenario(c.attack, true);
    std::printf("%-32s without seal: %-40s\n", c.name, describe(unsealed));
    std::printf("%-32s with %-12s: %-40s\n", "", c.seal_name,
                describe(sealed));
    const bool attack_landed =
        unsealed.exit_code == kExitFalsified || unsealed.faulted;
    bool blocked;
    if (c.attack == Attack::kFuncD) {
      blocked = sealed.faulted &&
                sealed.cause == core::TrapCause::kSealViolation;
    } else {
      blocked = !sealed.faulted && sealed.exit_code == 0;
    }
    std::printf("%-32s => attack %s, seal %s\n\n", "",
                attack_landed ? "lands when unsealed" : "DID NOT LAND (?)",
                blocked ? "blocks it" : "FAILED (?)");
    all_ok = all_ok && attack_landed && blocked;
  }
  // --- Static layer: the same Func-D gadget is visible *before* run time.
  // Permission sealing kills the injected WRPKR dynamically; the static
  // verifier (ERIM-style occurrence scan, `sealpk-verify`) catches it at
  // admission. Func-A's in-body WRPKR toggles are legitimate — its sealed
  // region is the permissible WRPKR range — so it is registered as a
  // trusted gate, exactly like --trust=func_a on the CLI.
  analysis::VerifyOptions opts;
  opts.trusted_gates.insert("func_a");
  const analysis::Report report =
      analysis::verify_program(build_scenario(Attack::kFuncD, true), opts);
  std::printf("Static verification of the Func-D scenario:\n");
  report.print(std::cout, "financial_log");
  bool static_ok = !report.admissible();
  for (const auto& finding : report.findings()) {
    if (finding.severity == analysis::Severity::kError) {
      static_ok = static_ok && finding.function == "func_d";
    }
  }

  sim::MachineConfig strict;
  strict.verify_policy = analysis::LoadVerifyPolicy::kEnforce;
  strict.verify_options = opts;
  sim::Machine gatekeeper{strict};
  const bool refused =
      gatekeeper.load(build_scenario(Attack::kFuncD, true).link()) ==
      sim::Machine::kLoadRefused;
  std::printf("strict loader (LoadVerifyPolicy::kEnforce): %s\n\n",
              refused ? "image refused before a single instruction runs"
                      : "image ADMITTED (?)");
  all_ok = all_ok && static_ok && refused;

  std::printf(all_ok ? "All three sealing features behave as in the "
                       "paper's Figure 3.\n"
                     : "MISMATCH vs the paper's Figure 3!\n");
  return all_ok ? 0 : 1;
}
