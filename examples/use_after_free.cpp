// The pkey use-after-free (paper §II-A) demonstrated on the Intel-MPK
// flavour and eliminated by SealPK's lazy de-allocation (§III-B.1).
//
// Story: component ALPHA protects a page with a pkey, later frees the key
// but keeps using the page (relying on its ordinary PTE permissions — the
// key is gone, after all). Component BETA then allocates a key for its own
// data and locks its domain down. On Intel MPK, BETA received ALPHA's
// recycled key, and because ALPHA's page still carries that key in its
// PTE, BETA's lock-down silently locks ALPHA's page too: ALPHA's next
// read faults on a domain it believes it left long ago. On SealPK the
// dirty key is quarantined until its pages drain, BETA gets a fresh key,
// and ALPHA is unaffected.
#include <cstdio>

#include "runtime/guest.h"
#include "sim/machine.h"

using namespace sealpk;
using namespace sealpk::isa;

namespace {

struct Result {
  u64 alpha_key = 0;
  u64 beta_key = 0;
  bool key_recycled = false;
  bool alpha_read_faulted = false;
  u32 faulting_pkey = 0;
  u64 secret = 0;
};

Result run_flavour(core::IsaFlavor flavor) {
  Program prog;
  rt::add_crt0(prog);
  Function& f = prog.add_function("main");
  f.addi(sp, sp, -16);
  f.sd(ra, 0, sp);
  // ALPHA: a keyed secret page...
  f.li(a0, 0);
  f.li(a1, 4096);
  f.li(a2, 3);
  rt::syscall(f, os::sys::kMmap);
  f.mv(s0, a0);
  f.li(t0, 0x5EC1);
  f.sd(t0, 0, s0);
  f.li(a0, 0);
  f.li(a1, 0);
  rt::syscall(f, os::sys::kPkeyAlloc);
  f.mv(s1, a0);  // ALPHA's key
  f.mv(a0, s0);
  f.li(a1, 4096);
  f.li(a2, 3);
  f.mv(a3, s1);
  rt::syscall(f, os::sys::kPkeyMprotect);
  // ...then ALPHA frees the key (but not the page).
  f.mv(a0, s1);
  rt::syscall(f, os::sys::kPkeyFree);
  f.mv(a0, s1);
  rt::syscall(f, os::sys::kReport);  // [0] ALPHA's (now freed) key
  // BETA: allocates a key for its own data and locks the domain down.
  f.li(a0, 0);
  f.li(a1, static_cast<i64>(os::pkeyperm::kNone));
  rt::syscall(f, os::sys::kPkeyAlloc);
  rt::syscall(f, os::sys::kReport);  // [1] BETA's key
  // ALPHA: routine access to its page — it freed the key, so only the PTE
  // permissions (RW) should apply...
  f.ld(a0, 0, s0);  // <- on Intel MPK this faults through BETA's lock-down
  rt::syscall(f, os::sys::kReport);  // [2] the secret, if readable
  f.ld(ra, 0, sp);
  f.addi(sp, sp, 16);
  f.li(a0, 0);
  f.ret();

  sim::MachineConfig cfg;
  cfg.hart.flavor = flavor;
  sim::Machine machine(cfg);
  machine.load(prog.link());
  machine.run();
  const auto& r = machine.kernel().reports();
  Result result;
  if (r.size() >= 2) {
    result.alpha_key = r[0];
    result.beta_key = r[1];
    result.key_recycled = r[0] == r[1];
  }
  if (r.size() >= 3) result.secret = r[2];
  const auto& faults = machine.kernel().faults();
  if (!faults.empty()) {
    result.alpha_read_faulted = faults[0].pkey_fault;
    result.faulting_pkey = faults[0].pkey;
  }
  return result;
}

void describe(const char* name, const Result& r) {
  std::printf("%s:\n", name);
  std::printf("  ALPHA freed key %llu; BETA was handed key %llu %s\n",
              static_cast<unsigned long long>(r.alpha_key),
              static_cast<unsigned long long>(r.beta_key),
              r.key_recycled ? "(RECYCLED while pages still carry it!)"
                             : "(fresh; old key quarantined)");
  if (r.alpha_read_faulted) {
    std::printf("  ALPHA's routine read: KILLED — pkey %u fault. BETA's "
                "lock-down hit ALPHA's page.\n\n",
                r.faulting_pkey);
  } else {
    std::printf("  ALPHA's routine read: fine (secret = 0x%llX)\n\n",
                static_cast<unsigned long long>(r.secret));
  }
}

}  // namespace

int main() {
  std::printf(
      "pkey use-after-free: ALPHA frees its key; BETA allocates one and\n"
      "locks its own domain down. Who suffers?\n\n");
  const Result mpk = run_flavour(core::IsaFlavor::kIntelMpkCompat);
  const Result sealpk = run_flavour(core::IsaFlavor::kSealPk);
  describe("Intel MPK flavour", mpk);
  describe("SealPK flavour (lazy de-allocation)", sealpk);

  const bool reproduced = mpk.key_recycled && mpk.alpha_read_faulted &&
                          !sealpk.key_recycled &&
                          !sealpk.alpha_read_faulted &&
                          sealpk.secret == 0x5EC1;
  std::printf(reproduced
                  ? "Reproduced §II-A: eager free recycles live keys and "
                    "entangles strangers;\nlazy de-allocation (§III-B.1) "
                    "quarantines the key until its pages drain.\n"
                  : "UNEXPECTED: lifecycle semantics differ from the "
                    "paper.\n");
  return reproduced ? 0 : 1;
}
