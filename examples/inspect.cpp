// Tooling demo: run a benchmark proxy under the instruction tracer and
// dump machine statistics — the workflow for debugging a guest program or
// an instrumentation pass.
//
// Usage: inspect [workload-name]   (default: qsort)
#include <cstdio>
#include <cstring>
#include <iostream>

#include "passes/shadow_stack.h"
#include "sim/stats.h"
#include "sim/trace.h"
#include "workloads/workload.h"

using namespace sealpk;

int main(int argc, char** argv) {
  const char* name = argc > 1 ? argv[1] : "qsort";
  const wl::Workload* workload = nullptr;
  for (const auto& w : wl::all_workloads()) {
    if (std::strcmp(w.name, name) == 0) {
      workload = &w;
      break;
    }
  }
  if (workload == nullptr) {
    std::fprintf(stderr, "unknown workload '%s'; options:", name);
    for (const auto& w : wl::all_workloads()) {
      std::fprintf(stderr, " %s", w.name);
    }
    std::fprintf(stderr, "\n");
    return 2;
  }

  isa::Program prog = workload->build(workload->test_scale);
  passes::ShadowStackOptions opts;
  opts.kind = passes::ShadowStackKind::kSealPkRdWr;
  passes::apply_shadow_stack(prog, opts);

  sim::Machine machine{sim::MachineConfig{}};
  const int pid = machine.load(prog.link());
  sim::Tracer tracer(24);
  tracer.attach(machine.hart());
  const auto outcome = machine.run();

  std::printf("%s/%s under the SealPK-RD+WR shadow stack: %s, exit %lld\n",
              wl::suite_name(workload->suite), workload->name,
              outcome.completed ? "completed" : "hit the budget",
              static_cast<long long>(machine.exit_code(pid)));
  std::printf("checksum %llu (golden %llu)\n\n",
              static_cast<unsigned long long>(
                  machine.kernel().reports().empty()
                      ? 0
                      : machine.kernel().reports()[0]),
              static_cast<unsigned long long>(
                  workload->golden(workload->test_scale)));

  sim::print_stats(sim::collect_stats(machine), std::cout);

  std::printf("\nlast %zu instructions (ring-buffer trace):\n",
              tracer.entries().size());
  tracer.dump(std::cout);
  return 0;
}
