// Write-only domains (paper §III-A): "our design enables a write-only
// page ... specifically useful for log entries, where one thread is
// responsible for writing the log and another thread processes the
// written log."
//
// A producer thread appends to a log it can only WRITE (it provably cannot
// read back its own entries), while the consumer thread — with its own
// per-thread PKR view of the same key — reads them. Impossible with bare
// RISC-V PTE permissions (W-without-R is reserved) and with Intel MPK's
// (AD, WD) encoding.
#include <cstdio>

#include "runtime/guest.h"
#include "sim/machine.h"

using namespace sealpk;
using namespace sealpk::isa;

namespace {

constexpr i64 kEntries = 16;

Program build() {
  Program prog;
  rt::add_crt0(prog);
  rt::add_pkey_lib(prog);
  prog.add_zero("log_ptr", 8);
  prog.add_zero("produced", 8);

  Function& f = prog.add_function("main");
  f.addi(sp, sp, -16);
  f.sd(ra, 0, sp);
  // log = mmap(page, RW); keyed write-only for this (producer) thread.
  f.li(a0, 0);
  f.li(a1, 4096);
  f.li(a2, 3);
  rt::syscall(f, os::sys::kMmap);
  f.mv(s0, a0);
  f.la(t0, "log_ptr");
  f.sd(a0, 0, t0);
  f.li(a0, 0);
  f.li(a1, static_cast<i64>(os::pkeyperm::kWriteOnly));
  rt::syscall(f, os::sys::kPkeyAlloc);
  f.mv(s1, a0);
  f.mv(a0, s0);
  f.li(a1, 4096);
  f.li(a2, 3);
  f.mv(a3, s1);
  rt::syscall(f, os::sys::kPkeyMprotect);
  // Spawn the consumer; it inherits this PKR (write-only view) and flips
  // ITS OWN view to read-only — per-thread PKR (§III-B.2).
  f.li(a0, 0);
  f.li(a1, 16384);
  f.li(a2, 3);
  rt::syscall(f, os::sys::kMmap);
  f.li(t0, 16384);
  f.add(a1, a0, t0);
  f.la(a0, "consumer");
  f.mv(a2, s1);  // pass the pkey
  rt::syscall(f, os::sys::kClone);
  // Produce entries: value of entry i is i * 0x101.
  const Label produce = f.new_label(), wait = f.new_label(),
              done = f.new_label();
  f.li(s2, 0);
  f.bind(produce);
  f.li(t0, kEntries);
  f.bgeu(s2, t0, wait);
  f.li(t1, 0x101);
  f.mul(t1, t1, s2);
  f.slli(t2, s2, 3);
  f.add(t2, s0, t2);
  f.sd(t1, 0, t2);  // append: allowed, the domain is write-only
  f.addi(s2, s2, 1);
  f.la(t0, "produced");
  f.sd(s2, 0, t0);
  rt::syscall(f, os::sys::kSchedYield);
  f.j(produce);
  f.bind(wait);
  // Prove the producer CANNOT read its own log: __pkey_get shows the
  // write-only view; an actual read would kill the process (the consumer
  // demonstrates reads instead).
  f.mv(a0, s1);
  f.call("__pkey_get");
  rt::syscall(f, os::sys::kReport);  // [first] producer's view (expect 2)
  // Wait for the consumer's checksum (it reports it), then exit.
  f.bind(done);
  rt::syscall(f, os::sys::kSchedYield);
  f.la(t0, "produced");
  f.ld(t1, 0, t0);
  f.li(t2, kEntries + 1);  // consumer bumps it past kEntries when done
  f.bne(t1, t2, done);
  f.ld(ra, 0, sp);
  f.addi(sp, sp, 16);
  f.li(a0, 0);
  f.ret();

  Function& c = prog.add_function("consumer");
  c.instrumentable = false;
  c.mv(s1, a0);  // the pkey arrives in a0
  // Flip THIS thread's view of the domain to read-only.
  c.mv(a0, s1);
  c.li(a1, static_cast<i64>(os::pkeyperm::kReadOnly));
  c.call("__pkey_set");
  c.mv(a0, s1);
  c.call("__pkey_get");
  rt::syscall(c, os::sys::kReport);  // consumer's view (expect 1)
  // Wait for all entries, then checksum them via reads.
  const Label poll = c.new_label(), sum = c.new_label(),
              sum_done = c.new_label(), spin = c.new_label();
  c.bind(poll);
  rt::syscall(c, os::sys::kSchedYield);
  c.la(t0, "produced");
  c.ld(t1, 0, t0);
  c.li(t2, kEntries);
  c.bne(t1, t2, poll);
  c.la(t3, "log_ptr");
  c.ld(t3, 0, t3);
  c.li(t4, 0);  // index
  c.li(t5, 0);  // checksum
  c.bind(sum);
  c.li(t2, kEntries);
  c.bgeu(t4, t2, sum_done);
  c.slli(t6, t4, 3);
  c.add(t6, t3, t6);
  c.ld(t6, 0, t6);  // read: allowed in THIS thread's view
  c.add(t5, t5, t6);
  c.addi(t4, t4, 1);
  c.j(sum);
  c.bind(sum_done);
  c.mv(a0, t5);
  rt::syscall(c, os::sys::kReport);  // the checksum of what it read
  c.la(t0, "produced");
  c.li(t1, kEntries + 1);
  c.sd(t1, 0, t0);  // signal main to exit
  c.bind(spin);
  rt::syscall(c, os::sys::kSchedYield);
  c.j(spin);
  return prog;
}

}  // namespace

int main() {
  sim::Machine machine{sim::MachineConfig{}};
  const int pid = machine.load(build().link());
  machine.run();
  const auto& r = machine.kernel().reports();
  std::printf("Write-only log with a producer/consumer thread pair\n\n");
  if (r.size() != 3 || machine.exit_code(pid) != 0) {
    std::printf("unexpected run (reports=%zu, exit=%lld)\n", r.size(),
                static_cast<long long>(machine.exit_code(pid)));
    return 1;
  }
  u64 expected = 0;
  for (i64 i = 0; i < kEntries; ++i) {
    expected += static_cast<u64>(i) * 0x101;
  }
  // Report order: the consumer reports its view first, then its checksum
  // once all entries landed, and the producer reports its view last.
  std::printf("consumer's domain view: %llu (1 = read-only)\n",
              static_cast<unsigned long long>(r[0]));
  std::printf("consumer checksum:      %llu (expected %llu)\n",
              static_cast<unsigned long long>(r[1]),
              static_cast<unsigned long long>(expected));
  std::printf("producer's domain view: %llu (2 = write-only)\n",
              static_cast<unsigned long long>(r[2]));
  const bool ok = r[0] == os::pkeyperm::kReadOnly &&
                  r[1] == expected && r[2] == os::pkeyperm::kWriteOnly;
  std::printf(ok ? "\nOne page, one key, two thread-local permission "
                   "views: the write-only log works.\n"
                 : "\nMISMATCH!\n");
  return ok ? 0 : 1;
}
